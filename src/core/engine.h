// Sans-I/O protocol engines for the Dissent round protocol.
//
// ServerEngine and ClientEngine own the per-round step sequencing of
// Algorithm 2 / Algorithm 1 — submission windows, the inventory -> commit ->
// ciphertext -> signature gossip cascade, output distribution, and round
// pipelining — as pure state machines with no clocks, sockets, or simulator
// types inside. Every interaction is:
//
//     Actions a = engine.HandleMessage(from, msg, now_us);   // or HandleTimer
//     for (auto& e : a.out)    transport.send(e.to, SerializeWire(e.msg));
//     for (auto& t : a.timers) transport.schedule(t.delay_us, t.token);
//
// The drivers are thin transports over this API: Coordinator (coordinator.h)
// delivers Envelopes in-process with zero latency, NetDissent
// (net_protocol.h) maps them onto sim::Network sends and Simulator timers,
// and a future real-socket (io_uring) transport slots in the same way. The
// engines are the only place protocol order lives, so the drivers can never
// disagree on it.
//
// Shared-payload ownership rules: an Envelope holds a
// `shared_ptr<const WireMessage>`, and one message object is shared by every
// envelope of a broadcast (server gossip goes out as M-1 envelopes sharing
// one message; the round Output goes out as a *single* envelope addressed to
// Peer::Kind::kAttachedClients, which the transport fans out to this
// server's attached clients). The contract is:
//   * the engine never mutates a message after emitting it — payloads are
//     immutable from construction;
//   * a transport that needs to tamper (test hooks) must copy-on-write, not
//     mutate in place, because sibling envelopes alias the same object;
//   * transports may cache per-payload work (serialization, parse results)
//     keyed on the message/frame pointer — identity is stable for the
//     lifetime of the shared_ptr and broadcast envelopes are emitted
//     consecutively;
//   * a transport expanding kAttachedClients chooses the wire fan-out (one
//     frame per client, or one frame per client-hosting machine): the frame
//     bytes are identical for every recipient by construction.
//
// Crypto fast-path (Elem/MultiExp) rules — the engines' proof work (blame
// mix cascade, output certificates) rides the multi-exponentiation engine
// in crypto/multiexp.h; the contract mirrors the ownership rules above:
//   * Group::Elem carries Montgomery-form limbs. Convert with
//     ToElem/FromElem at boundaries (wire, transcripts, comparisons) and
//     chain MulElems/MultiExp in the Montgomery domain in between; the
//     BigInt encoding stays canonical, and every fast path is bit-identical
//     to the generic Montgomery::Exp reference (tests/crypto/multiexp_test).
//   * Exponent-secrecy split: *Secret entry points (GExpSecret, ExpSecret,
//     MultiExpSecret) use fixed schedules + constant-time table scans and
//     MUST be used for private keys, nonces, and shuffle secrets; the plain
//     variants are variable-time and for public (verifier-side) exponents
//     only. See montgomery.h.
//   * Determinism under parallelism: provers draw all randomness serially,
//     then fan pure exponentiation across ParallelFor workers — protocol
//     bytes are independent of thread count, so transport byte-identity
//     tests hold at any parallelism level. ScopedCryptoFastPath(false)
//     restores the pre-PR serial/generic behaviour for benches and
//     equivalence tests.
//
// Pipelining: a ServerEngine keeps a window of `pipeline_depth` concurrent
// in-flight rounds, with all gathering state held in a ring of
// pipeline_depth slots keyed by round number — submissions for round r+1
// are accepted and the r+1 gossip cascade runs while round r is still
// combining or certifying. Rounds *finish* strictly in order (outputs are
// distributed in round order). Depth 1 reproduces the sequential protocol
// exactly.
//
// Blame sub-phase (§3.9): when a finished round's certified output carries a
// nonzero shuffle-request field, every server engine independently flags a
// blame instance whose session id is that round number. Pipeline semantics
// are deterministic: the engine stops opening new rounds, the ≤ depth rounds
// already in flight drain to completion in order, and only then does the
// blame protocol run — BlameStart to the attached clients, fixed-width
// AccusationSubmit collection, roster gossip, the verified mix cascade in
// server order, TraceEvidence disclosure, TraceDisruptor, the accused
// client's rebuttal, and finally a BlameVerdict broadcast. An expelled
// client is removed from the logic's membership and from this engine's
// window expectations before any post-blame round opens, so it is out of
// every schedule from round session+depth on. The engines then reopen depth
// rounds and the pipeline resumes. Clients mirror the same flag scan: once
// they see a flagged output they defer further submissions until the
// verdict, so no submission is ever dropped against an unopened round.
#ifndef DISSENT_CORE_ENGINE_H_
#define DISSENT_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/accusation.h"
#include "src/core/client.h"
#include "src/core/server.h"
#include "src/core/wire.h"

namespace dissent {

// Protocol-level address: transports map these to nodes/sockets.
// kAttachedClients is a broadcast address — "every client attached to
// server `index`" — so a 5,000-client output distribution is one envelope,
// not 5,000.
struct Peer {
  enum class Kind : uint8_t { kServer, kClient, kAttachedClients };
  Kind kind = Kind::kServer;
  uint32_t index = 0;
};
inline Peer ServerPeer(uint32_t j) { return Peer{Peer::Kind::kServer, j}; }
inline Peer ClientPeer(uint32_t i) { return Peer{Peer::Kind::kClient, i}; }
inline Peer AttachedClientsPeer(uint32_t server) {
  return Peer{Peer::Kind::kAttachedClients, server};
}

// One outgoing message: the transport serializes and delivers it. The
// payload is shared so a broadcast to M-1 peers carries one copy of (say) a
// 128 KiB server ciphertext, and transports can serialize it once by caching
// on pointer identity (broadcast envelopes are emitted consecutively). See
// the shared-payload ownership rules in the header comment.
struct Envelope {
  Peer to;
  std::shared_ptr<const WireMessage> msg;
};

// Request to be called back via HandleTimer(token) after delay_us. Tokens
// are engine-opaque; stale timers (for finished rounds) are ignored, so the
// transport never needs to cancel anything.
struct TimerRequest {
  uint64_t token = 0;
  int64_t delay_us = 0;
};

class ServerEngine {
 public:
  struct Config {
    // Submission window (§5.1): once `window_fraction` of the expected
    // submitters have answered, close at `window_multiplier` times the
    // elapsed time; `hard_deadline_us` is the backstop.
    double window_fraction = 0.95;
    double window_multiplier = 1.1;
    int64_t hard_deadline_us = 120 * 1000000ll;
    // Adaptive window sizing (§5.1 discussion): when true, the expected
    // submitter count for round r is the participation this server observed
    // at the close of the previous round's window, so sustained churn moves
    // the threshold instead of stalling every round to the hard deadline.
    // The first round (no observation yet) uses the attached-client share.
    bool adaptive_window = true;
    // Concurrent in-flight rounds (must match the logic's pipeline_depth).
    size_t pipeline_depth = 1;
    // Clients attached to this server (they receive Output messages).
    std::vector<uint32_t> attached_clients;
  };

  // A round that reached its terminal state this call.
  struct RoundDone {
    uint64_t round = 0;
    bool completed = false;
    Bytes cleartext;
    size_t participation = 0;
    bool below_alpha = false;           // §3.7 threshold would have stalled
    bool accusation_requested = false;  // §3.9 shuffle-request field seen
    std::optional<size_t> equivocating_server;
    int64_t started_at_us = 0;          // when this round's window opened
  };

  // Result of one blame instance (§3.9), reported when the verdict is
  // reached. Deterministic and identical on every honest server.
  struct BlameDone {
    uint64_t session = 0;
    bool shuffle_ran = false;       // cascade completed and verified
    bool accusation_found = false;  // a decodable SignedAccusation surfaced
    bool accusation_valid = false;  // it checked out against evidence
    TraceVerdict trace;             // pre-rebuttal trace verdict
    wire::BlameVerdict verdict;     // the final outcome clients receive
  };

  struct Actions {
    std::vector<Envelope> out;
    std::vector<TimerRequest> timers;
    std::vector<RoundDone> done;
    std::vector<BlameDone> blame;
  };

  // `logic` must outlive the engine; `def` is the shared group roster.
  ServerEngine(DissentServer* logic, const GroupDef& def, Config config);

  // Opens rounds 1..pipeline_depth. Call once, after the key shuffle.
  Actions StartSession(int64_t now_us);
  Actions HandleMessage(const Peer& from, const WireMessage& msg, int64_t now_us);
  Actions HandleTimer(uint64_t token, int64_t now_us);

  DissentServer& logic() { return *logic_; }
  uint64_t rounds_completed() const { return rounds_completed_; }
  size_t last_participation() const { return last_participation_; }
  // Submissions accepted for a round while an earlier round was still in
  // flight — nonzero iff pipelining actually overlapped rounds.
  uint64_t pipelined_submissions() const { return pipelined_submissions_; }
  size_t inflight_rounds() const;
  bool halted() const { return halted_; }
  // Submission count this server observed at its most recent window close
  // (the adaptive-window input); 0 until a window has closed.
  size_t last_window_observed() const { return last_window_observed_; }
  // True from the moment a finished round flags an accusation shuffle until
  // that blame instance's verdict is broadcast.
  bool blame_in_progress() const { return blame_.pending || blame_.active; }
  uint64_t blames_completed() const { return blames_completed_; }

 private:
  // Ring slot for one in-flight round (index = round % pipeline_depth).
  struct RoundState {
    uint64_t round = 0;
    bool active = false;
    int64_t started_us = 0;
    bool window_closed = false;
    bool window_timer_armed = false;
    std::vector<std::optional<std::vector<uint32_t>>> inventories;
    std::vector<std::optional<Bytes>> commits;
    std::vector<std::optional<Bytes>> server_cts;
    std::vector<std::optional<Bytes>> sigs;  // serialized, parse-checked
    bool sent_commit = false;
    bool sent_ct = false;
    bool sent_sig = false;
    size_t participation = 0;
    Bytes cleartext;
  };

  // Timer tokens carry (round-or-session << 2) | kind. kWindowPolicy and
  // kHardDeadline belong to the round pipeline; kBlameCollect backstops the
  // blame-shuffle collection window and kBlameRebuttal the accused client's
  // answer (a silent client concedes).
  enum TimerKind : uint64_t {
    kWindowPolicy = 0,
    kHardDeadline = 1,
    kBlameCollect = 2,
    kBlameRebuttal = 3,
  };
  static uint64_t Token(uint64_t round, TimerKind kind) { return (round << 2) | kind; }

  // One blame instance (§3.9); at most one runs at a time, and all round
  // pipelining is suspended while it does.
  struct BlameState {
    bool pending = false;  // flagged; waiting for in-flight rounds to drain
    bool active = false;
    uint64_t session = 0;
    // Collection: fixed-width rows from this server's attached clients
    // (row bytes + the client's signature over them).
    bool collecting = false;
    std::map<uint32_t, std::pair<Bytes, Bytes>> collected;
    std::vector<std::optional<std::vector<wire::BlameRosterEntry>>> rosters;
    // Cascade: the merged matrix walks through every server's verified mix.
    bool mixing = false;
    std::vector<std::optional<Bytes>> mix_steps;  // serialized, per server
    CiphertextMatrix cascade;
    size_t steps_verified = 0;
    bool own_step_sent = false;
    bool shuffle_ran = false;
    // Trace: the decoded accusation plus every server's disclosure.
    bool tracing = false;
    std::optional<SignedAccusation> accusation;
    bool accusation_found = false;
    bool accusation_valid = false;
    std::vector<std::optional<wire::TraceEvidence>> disclosures;
    TraceVerdict trace;
    // Rebuttal: the accused client's answer (or its absence).
    bool awaiting_rebuttal = false;
    uint32_t accused = 0;
    std::vector<bool> accused_pad_bits;  // per server, for the challenge
    // A peer's forwarded rebuttal that arrived while a straggling
    // TraceEvidence still held our own trace back; replayed after tracing.
    std::optional<wire::BlameRebuttal> pending_rebuttal;
  };

  RoundState* FindRound(uint64_t round);
  void StartRound(uint64_t round, int64_t now_us, Actions& a);
  void HandleServerPhase(uint32_t sender, const WireMessage& msg, int64_t now_us, Actions& a);
  void Broadcast(WireMessage msg, Actions& a);
  void MaybeArmWindowTimer(uint64_t round, int64_t now_us, Actions& a);
  void CloseWindow(uint64_t round, Actions& a);
  void MaybeBuildCiphertext(uint64_t round, Actions& a);
  void MaybeShareCiphertext(uint64_t round, Actions& a);
  void MaybeCertify(uint64_t round, Actions& a);
  void MaybeFinishRounds(int64_t now_us, Actions& a);
  bool AllPresent(const std::vector<std::optional<Bytes>>& v) const;

  // --- blame sub-phase (§3.9) ---
  bool IsAttached(uint32_t client) const;
  size_t ExpectedBlameSubmitters() const;
  void MaybeStartBlame(int64_t now_us, Actions& a);
  void HandleBlameMessage(const Peer& from, const WireMessage& msg, int64_t now_us, Actions& a);
  void BufferEarlyBlame(uint32_t sender, const WireMessage& msg);
  void CloseBlameCollection(int64_t now_us, Actions& a);
  void MaybeAssembleBlameMatrix(int64_t now_us, Actions& a);
  void TryAdvanceCascade(int64_t now_us, Actions& a);
  void DecodeBlameAccusation(int64_t now_us, Actions& a);
  void MaybeTrace(int64_t now_us, Actions& a);
  void HandleRebuttal(const wire::BlameRebuttal& msg, const Peer& from, int64_t now_us,
                      Actions& a);
  void FinishBlame(uint8_t kind, uint32_t culprit, int64_t now_us, Actions& a);

  DissentServer* logic_;
  const GroupDef& def_;
  Config config_;
  size_t index_;
  size_t num_servers_;

  std::vector<RoundState> rounds_;  // ring of in-flight rounds
  // Server-phase messages for rounds we have not opened yet (a faster peer
  // can be a full phase ahead); replayed on StartRound. Bounded.
  std::map<uint64_t, std::vector<std::pair<uint32_t, WireMessage>>> early_;
  uint64_t next_round_to_start_ = 1;
  uint64_t next_round_to_finish_ = 1;
  uint64_t rounds_completed_ = 0;
  size_t last_participation_ = 0;
  size_t last_window_observed_ = 0;
  uint64_t pipelined_submissions_ = 0;
  bool halted_ = false;

  BlameState blame_;
  // Server-gossiped blame messages that outpaced our own pipeline drain
  // (a peer can finish, collect, and roster while our last round's
  // signatures are still in flight). One slot per (sender, type); replayed
  // when the blame instance activates.
  std::vector<std::pair<uint32_t, WireMessage>> blame_early_;
  uint64_t blames_completed_ = 0;
  size_t blame_width_ = 0;  // ElGamal row width of a kAccusationBytes payload
  size_t expelled_attached_ = 0;
};

class ClientEngine {
 public:
  struct Config {
    uint32_t upstream_server = 0;
    size_t pipeline_depth = 1;  // must match the logic's pipeline_depth
    // Event-driven transports leave this on: processing round r's output
    // immediately builds and submits round r+depth. A synchronous transport
    // (the in-process Coordinator) turns it off and paces submissions itself
    // via SubmitRound, so application sends queued between rounds still make
    // the next round.
    bool auto_submit = true;
  };

  // One verified round output, decoded.
  struct Delivery {
    uint64_t round = 0;
    bool signatures_ok = false;
    bool own_slot_disrupted = false;
    std::vector<std::pair<size_t, Bytes>> messages;
    Bytes cleartext;
  };

  struct Actions {
    std::vector<Envelope> out;
    std::vector<Delivery> delivered;
    // Blame verdicts received from the upstream server (§3.9), in order.
    std::vector<wire::BlameVerdict> verdicts;
  };

  ClientEngine(DissentClient* logic, const GroupDef& def, Config config);

  // Submits ciphertexts for rounds 1..pipeline_depth. Call once, after the
  // key shuffle assigned slots.
  Actions StartSession();
  Actions HandleMessage(const Peer& from, const WireMessage& msg);
  // Build and submit a specific round's ciphertext (transport-driven
  // resynchronization, e.g. after a reconnect catch-up).
  Actions SubmitRound(uint64_t round);

  DissentClient& logic() { return *logic_; }
  // True once a BlameVerdict expelled this client; it stops submitting.
  bool expelled() const { return expelled_; }

 private:
  void Submit(uint64_t round, Actions& a);
  void SendUpstream(WireMessage msg, Actions& a);
  void AnswerBlameStart(uint64_t session, Actions& a);
  // True once we have processed the outputs of every round the servers
  // drained before opening the blame instance (session .. session+depth-1).
  bool SeenDrainedOutputs(uint64_t session) const {
    return last_output_round_ + 1 >= session + config_.pipeline_depth;
  }

  DissentClient* logic_;
  const GroupDef& def_;
  Config config_;
  uint64_t last_output_round_ = 0;  // replay guard: outputs move forward only
  // Blame deferral (§3.9): after a flagged output, auto-submission pauses
  // (the servers stopped opening rounds) and the held rounds flush when the
  // verdict arrives — so submissions are never dropped against unopened
  // rounds and the pipeline resumes without a stall.
  bool blame_hold_ = false;
  std::vector<uint64_t> deferred_;
  // A BlameStart that arrived before the flagged round's output (small
  // frames can overtake large ones on bandwidth-modeled links): answered
  // only once every drained output has been processed, so the accusation
  // that rides the shuffle is the same on every transport and ordering.
  std::optional<uint64_t> pending_blame_start_;
  uint64_t last_verdict_session_ = 0;
  bool expelled_ = false;
};

}  // namespace dissent

#endif  // DISSENT_CORE_ENGINE_H_
