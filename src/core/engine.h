// Sans-I/O protocol engines for the Dissent round protocol.
//
// ServerEngine and ClientEngine own the per-round step sequencing of
// Algorithm 2 / Algorithm 1 — submission windows, the inventory -> commit ->
// ciphertext -> signature gossip cascade, output distribution, and round
// pipelining — as pure state machines with no clocks, sockets, or simulator
// types inside. Every interaction is:
//
//     Actions a = engine.HandleMessage(from, msg, now_us);   // or HandleTimer
//     for (auto& e : a.out)    transport.send(e.to, SerializeWire(e.msg));
//     for (auto& t : a.timers) transport.schedule(t.delay_us, t.token);
//
// The drivers are thin transports over this API: Coordinator (coordinator.h)
// delivers Envelopes in-process with zero latency, NetDissent
// (net_protocol.h) maps them onto sim::Network sends and Simulator timers,
// and a future real-socket (io_uring) transport slots in the same way. The
// engines are the only place protocol order lives, so the drivers can never
// disagree on it.
//
// Shared-payload ownership rules: an Envelope holds a
// `shared_ptr<const WireMessage>`, and one message object is shared by every
// envelope of a broadcast (server gossip goes out as M-1 envelopes sharing
// one message; the round Output goes out as a *single* envelope addressed to
// Peer::Kind::kAttachedClients, which the transport fans out to this
// server's attached clients). The contract is:
//   * the engine never mutates a message after emitting it — payloads are
//     immutable from construction;
//   * a transport that needs to tamper (test hooks) must copy-on-write, not
//     mutate in place, because sibling envelopes alias the same object;
//   * transports may cache per-payload work (serialization, parse results)
//     keyed on the message/frame pointer — identity is stable for the
//     lifetime of the shared_ptr and broadcast envelopes are emitted
//     consecutively;
//   * a transport expanding kAttachedClients chooses the wire fan-out (one
//     frame per client, or one frame per client-hosting machine): the frame
//     bytes are identical for every recipient by construction.
//
// Crypto fast-path (Elem/MultiExp) rules — the engines' proof work (blame
// mix cascade, output certificates) rides the multi-exponentiation engine
// in crypto/multiexp.h; the contract mirrors the ownership rules above:
//   * Group::Elem carries Montgomery-form limbs. Convert with
//     ToElem/FromElem at boundaries (wire, transcripts, comparisons) and
//     chain MulElems/MultiExp in the Montgomery domain in between; the
//     BigInt encoding stays canonical, and every fast path is bit-identical
//     to the generic Montgomery::Exp reference (tests/crypto/multiexp_test).
//   * Exponent-secrecy split: *Secret entry points (GExpSecret, ExpSecret,
//     MultiExpSecret) use fixed schedules + constant-time table scans and
//     MUST be used for private keys, nonces, and shuffle secrets; the plain
//     variants are variable-time and for public (verifier-side) exponents
//     only. See montgomery.h.
//   * Determinism under parallelism: provers draw all randomness serially,
//     then fan pure exponentiation across ParallelFor workers — protocol
//     bytes are independent of thread count, so transport byte-identity
//     tests hold at any parallelism level. ScopedCryptoFastPath(false)
//     restores the pre-PR serial/generic behaviour for benches and
//     equivalence tests.
//
// Pipelining: a ServerEngine keeps a window of `pipeline_depth` concurrent
// in-flight rounds, with all gathering state held in a ring of
// pipeline_depth slots keyed by round number — submissions for round r+1
// are accepted and the r+1 gossip cascade runs while round r is still
// combining or certifying. Rounds *finish* strictly in order (outputs are
// distributed in round order). Depth 1 reproduces the sequential protocol
// exactly.
//
// Blame sub-phase (§3.9): when a finished round's certified output carries a
// nonzero shuffle-request field, every server engine independently flags a
// blame instance whose session id is that round number. Pipeline semantics
// are deterministic: the engine stops opening new rounds, the ≤ depth rounds
// already in flight drain to completion in order, and only then does the
// blame protocol run — BlameStart to the attached clients, fixed-width
// AccusationSubmit collection, roster gossip, the verified mix cascade in
// server order, TraceEvidence disclosure, TraceDisruptor, the accused
// client's rebuttal, and finally a BlameVerdict broadcast. An expelled
// client is removed from the logic's membership and from this engine's
// window expectations before any post-blame round opens, so it is out of
// every schedule from round session+depth on. The engines then reopen depth
// rounds and the pipeline resumes. Clients mirror the same flag scan: once
// they see a flagged output they defer further submissions until the
// verdict, so no submission is ever dropped against an unopened round.
#ifndef DISSENT_CORE_ENGINE_H_
#define DISSENT_CORE_ENGINE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/core/accusation.h"
#include "src/core/client.h"
#include "src/core/server.h"
#include "src/core/wire.h"
#include "src/util/serialize.h"

namespace dissent {

// Protocol-level address: transports map these to nodes/sockets.
// kAttachedClients is a broadcast address — "every client attached to
// server `index`" — so a 5,000-client output distribution is one envelope,
// not 5,000.
struct Peer {
  enum class Kind : uint8_t { kServer, kClient, kAttachedClients };
  Kind kind = Kind::kServer;
  uint32_t index = 0;
};
inline Peer ServerPeer(uint32_t j) { return Peer{Peer::Kind::kServer, j}; }
inline Peer ClientPeer(uint32_t i) { return Peer{Peer::Kind::kClient, i}; }
inline Peer AttachedClientsPeer(uint32_t server) {
  return Peer{Peer::Kind::kAttachedClients, server};
}

// One outgoing message: the transport serializes and delivers it. The
// payload is shared so a broadcast to M-1 peers carries one copy of (say) a
// 128 KiB server ciphertext, and transports can serialize it once by caching
// on pointer identity (broadcast envelopes are emitted consecutively). See
// the shared-payload ownership rules in the header comment.
struct Envelope {
  Peer to;
  std::shared_ptr<const WireMessage> msg;
};

// Request to be called back via HandleTimer(token) after delay_us. Tokens
// are engine-opaque; stale timers (for finished rounds) are ignored, so the
// transport never needs to cancel anything.
struct TimerRequest {
  uint64_t token = 0;
  int64_t delay_us = 0;
};

// Ack/retransmit layer shared by both engines. Off by default: the
// in-process Coordinator is lossless and the sim transport was historically
// run over reliable links, and with `enabled = false` every engine byte
// stream is identical to the pre-reliability protocol.
struct ReliabilityConfig {
  bool enabled = false;
  int64_t rto_us = 500 * 1000ll;        // initial per-frame retransmit timeout
  int64_t max_rto_us = 8 * 1000000ll;   // backoff cap
};

// Per-directed-peer sequencing, dedup, and retransmission for unicast
// engine traffic. Every unicast Envelope is wrapped in wire::Reliable{seq,
// inner}; the receiver acks every arrival (cumulative frontier + a sack
// bitmap of the 64 following sequence numbers), delivers each seq at most
// once, and the sender re-emits unacked frames with capped exponential
// backoff on a single repeating sweep timer owned by the engine.
// kAttachedClients broadcasts stay unreliable — a client that misses an
// Output recovers via the CatchUpRequest/RoundSummary path instead, so the
// fan-out stays one shared frame.
class ReliableMailbox {
 public:
  explicit ReliableMailbox(ReliabilityConfig cfg = {}) : cfg_(cfg) {}
  bool enabled() const { return cfg_.enabled; }

  // Sender side: wraps each unicast envelope of `out` in place (skipping
  // kAttachedClients fan-outs and Ack/Reliable frames the mailbox itself
  // produced) and records it for retransmission. `self` stamps
  // Reliable::from_id.
  void WrapOutgoing(std::vector<Envelope>& out, uint32_t self, int64_t now_us);

  enum class Recv : uint8_t { kDeliver, kDuplicate, kMalformed };
  // Receiver side: always appends an Ack toward `from`; parses and returns
  // the inner message iff this seq is new on the (from -> us) link.
  Recv OnReliable(const Peer& from, const wire::Reliable& rel, uint32_t self,
                  std::shared_ptr<const WireMessage>* inner, std::vector<Envelope>& out);
  void OnAck(const Peer& from, const wire::Ack& ack);

  // Re-emits every due pending frame into `out`, doubling its timeout
  // (capped at max_rto_us).
  void Sweep(int64_t now_us, std::vector<Envelope>& out);
  bool HasPending() const;
  uint64_t retransmits() const { return retransmits_; }
  // First-transmission reliable frames (the denominator of the retransmit
  // overhead ratio 1 + retransmits/reliable_sent).
  uint64_t reliable_sent() const { return reliable_sent_; }
  // Frames received more than once and discarded after acking.
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  // Peak unacked frames pending across all links at once.
  uint64_t max_in_flight() const { return max_in_flight_; }

  // Snapshot both directions of every link (pending frames, cumulative
  // frontiers, out-of-order sets) so a restarted node neither replays
  // delivered frames nor orphans unacked ones. Restored timeouts are reset
  // to the initial rto.
  void SerializeTo(Writer& w) const;
  bool RestoreFrom(Reader& r);

 private:
  struct Pending {
    std::shared_ptr<const WireMessage> frame;  // the wrapped Reliable message
    int64_t due_us = 0;
    int64_t rto_us = 0;
  };
  struct Link {
    Peer peer;
    uint64_t next_seq = 1;                // sender side
    std::map<uint64_t, Pending> pending;  // sender side: seq -> frame
    uint64_t cum = 0;                     // receiver side: all of 1..cum seen
    std::set<uint64_t> ooo;               // receiver side: seen beyond cum
  };
  Link& LinkFor(const Peer& peer);
  void EmitAck(const Link& l, uint32_t self, std::vector<Envelope>& out) const;

  void NotePeakInFlight();

  ReliabilityConfig cfg_;
  std::map<uint64_t, Link> links_;  // keyed on (peer.kind << 32) | peer.index
  uint64_t retransmits_ = 0;
  uint64_t reliable_sent_ = 0;
  uint64_t duplicates_dropped_ = 0;
  uint64_t max_in_flight_ = 0;
};

class ServerEngine {
 public:
  struct Config {
    // Submission window (§5.1): once `window_fraction` of the expected
    // submitters have answered, close at `window_multiplier` times the
    // elapsed time; `hard_deadline_us` is the backstop.
    double window_fraction = 0.95;
    double window_multiplier = 1.1;
    int64_t hard_deadline_us = 120 * 1000000ll;
    // Adaptive window sizing (§5.1 discussion): when true, the expected
    // submitter count for round r is the participation this server observed
    // at the close of the previous round's window, so sustained churn moves
    // the threshold instead of stalling every round to the hard deadline.
    // The first round (no observation yet) uses the attached-client share.
    bool adaptive_window = true;
    // Concurrent in-flight rounds (must match the logic's pipeline_depth).
    size_t pipeline_depth = 1;
    // Clients attached to this server (they receive Output messages).
    std::vector<uint32_t> attached_clients;
    // Ack/retransmit layer for unicast traffic (see ReliableMailbox).
    ReliabilityConfig reliability;
    // Graceful degradation: when nonzero, a round still unfinished this
    // long after its window opened triggers an abort vote; once every
    // server that is still alive (>= M-1 distinct votes, ours among them)
    // agrees, the round at the finish frontier aborts cleanly — all-zero
    // cleartext, RoundSummary{aborted} to the attached clients — and a
    // replacement round opens, so one crashed server past its restart
    // deadline cannot wedge the pipeline forever. 0 disables aborts.
    int64_t abort_deadline_us = 0;
    // Two-phase epoch-committed abort agreement (the default): votes are
    // signed wire::AbortPrepare frames stamped with the voter's abort epoch
    // (aborts applied so far), a round only aborts on a wire::AbortCommit
    // certificate carrying >= M-1 verified signatures, and certificates are
    // idempotently re-deliverable — a healing partition converges by
    // certificate replay, and a server restored from a stale snapshot is
    // unwedged via the ServerCatchUpRequest/Batch path. When false (with
    // abort_deadline_us > 0) the legacy one-shot RoundAbort broadcast runs
    // byte-identically to its pre-agreement form.
    bool abort_agreement = true;
    // Verdict agreement (§3.9 hardening): before acting on any expulsion,
    // every server broadcasts a signed VerdictShare over its proposed
    // verdict and waits for a verified share from *every* peer over the
    // identical (session, round, kind, culprit) context. A mismatch or a
    // missing share downgrades the verdict to inconclusive — no server ever
    // expels unilaterally on a verdict its peers did not provably reach.
    bool verdict_agreement = true;
    // Finished rounds retained as RoundSummary frames for client catch-up.
    size_t output_history = 64;
  };

  // A round that reached its terminal state this call.
  struct RoundDone {
    uint64_t round = 0;
    bool completed = false;
    bool aborted = false;  // fleet-voted RoundAbort (see Config::abort_deadline_us)
    Bytes cleartext;
    size_t participation = 0;
    bool below_alpha = false;           // §3.7 threshold would have stalled
    bool accusation_requested = false;  // §3.9 shuffle-request field seen
    std::optional<size_t> equivocating_server;
    int64_t started_at_us = 0;          // when this round's window opened
  };

  // Result of one blame instance (§3.9), reported when the verdict is
  // reached. Deterministic and identical on every honest server.
  struct BlameDone {
    uint64_t session = 0;
    bool shuffle_ran = false;       // cascade completed and verified
    bool accusation_found = false;  // a decodable SignedAccusation surfaced
    bool accusation_valid = false;  // it checked out against evidence
    TraceVerdict trace;             // pre-rebuttal trace verdict
    wire::BlameVerdict verdict;     // the final outcome clients receive
    // True when every server produced a verified VerdictShare over this
    // exact verdict (trivially true with agreement disabled or M == 1);
    // false when shares were missing or mismatched and the verdict was
    // downgraded to inconclusive.
    bool verdict_agreed = false;
  };

  struct Actions {
    std::vector<Envelope> out;
    std::vector<TimerRequest> timers;
    std::vector<RoundDone> done;
    std::vector<BlameDone> blame;
  };

  // `logic` must outlive the engine; `def` is the shared group roster.
  ServerEngine(DissentServer* logic, const GroupDef& def, Config config);

  // Opens rounds 1..pipeline_depth. Call once, after the key shuffle.
  Actions StartSession(int64_t now_us);
  Actions HandleMessage(const Peer& from, const WireMessage& msg, int64_t now_us);
  Actions HandleTimer(uint64_t token, int64_t now_us);

  // --- crash recovery ---
  // Serializes the full in-flight protocol state: the logic's schedule
  // window and submission ring, this engine's round ring, frontiers,
  // retained RoundSummary history, and both directions of the reliable
  // mailbox. A server restored from the latest snapshot resumes
  // byte-identically — unacked frames it sent are retransmitted from the
  // mailbox, frames it never acked are retransmitted by the peers — so its
  // post-restart gossip can never contradict pre-crash gossip already in
  // peers' first-write-wins slots (which would read as equivocation).
  // Excluded, by design: blame-instance state beyond the pending flag (a
  // crash during an active blame instance degrades to the peers' share
  // deadline and an inconclusive verdict) and accumulated trace evidence.
  // Recovery of in-flight frames requires Config::reliability.enabled.
  Bytes SerializeSnapshot() const;
  // Rebuilds from a snapshot taken by the same server (index and pipeline
  // depth must match). Returns the timer re-arms (window/deadline backstops
  // for every restored round, plus the retransmit sweep) or nullopt on a
  // malformed snapshot. Pseudonym keys and evidence retention must be
  // reinstalled on the logic by the transport *before* this call.
  std::optional<Actions> RestoreSnapshot(const Bytes& snapshot, int64_t now_us);

  // Timer-token introspection for transports that prune their timer heaps:
  // tokens are (id << kTimerKindBits) | kind, where id is a round or blame
  // session. A token is prunable after `round` resolves iff it is a
  // per-round backstop for id <= round — retransmit-sweep tokens and (while
  // a blame instance is live) blame backstops are never prunable.
  static constexpr uint64_t kTimerKindBits = 3;
  static uint64_t TimerTokenId(uint64_t token) { return token >> kTimerKindBits; }
  static bool TimerStaleAfterRound(uint64_t token, uint64_t round, bool blame_live);

  DissentServer& logic() { return *logic_; }
  uint64_t rounds_completed() const { return rounds_completed_; }
  size_t last_participation() const { return last_participation_; }
  // Submissions accepted for a round while an earlier round was still in
  // flight — nonzero iff pipelining actually overlapped rounds.
  uint64_t pipelined_submissions() const { return pipelined_submissions_; }
  size_t inflight_rounds() const;
  bool halted() const { return halted_; }
  // Submission count this server observed at its most recent window close
  // (the adaptive-window input); 0 until a window has closed.
  size_t last_window_observed() const { return last_window_observed_; }
  // True from the moment a finished round flags an accusation shuffle until
  // that blame instance's verdict is broadcast.
  bool blame_in_progress() const { return blame_.pending || blame_.active; }
  uint64_t blames_completed() const { return blames_completed_; }
  uint64_t rounds_aborted() const { return rounds_aborted_; }
  // Frames re-sent by the reliable mailbox (retransmission overhead probe).
  uint64_t retransmits() const { return mailbox_.retransmits(); }
  uint64_t reliable_sent() const { return mailbox_.reliable_sent(); }
  uint64_t duplicates_dropped() const { return mailbox_.duplicates_dropped(); }
  uint64_t max_in_flight() const { return mailbox_.max_in_flight(); }
  // Server catch-up: true while this engine is replaying signed round
  // summaries from a sibling to close a stale-snapshot gap.
  bool catching_up() const { return catching_up_; }
  // Rounds applied via the server catch-up path (outputs + certificates).
  uint64_t catch_up_rounds() const { return catch_up_rounds_; }

 private:
  // Ring slot for one in-flight round (index = round % pipeline_depth).
  struct RoundState {
    uint64_t round = 0;
    bool active = false;
    int64_t started_us = 0;
    bool window_closed = false;
    bool window_timer_armed = false;
    int64_t window_close_at_us = 0;  // absolute; for snapshot re-arming
    std::vector<std::optional<std::vector<uint32_t>>> inventories;
    std::vector<std::optional<Bytes>> commits;
    std::vector<std::optional<Bytes>> server_cts;
    std::vector<std::optional<Bytes>> sigs;  // serialized, parse-checked
    // Per-sibling one-shot: set after re-offering our phase frames to a
    // sibling that re-ran this round (not snapshotted; a restored server
    // may re-offer again).
    std::vector<bool> reoffered;
    bool sent_commit = false;
    bool sent_ct = false;
    bool sent_sig = false;
    // Abort-agreement mutual exclusion: per round a server emits EITHER its
    // SignatureShare or an AbortPrepare, never both. Completion needs all M
    // signatures and a certificate needs M-1 prepares, so with 2M-1 > M
    // one-per-server emissions a certified output and an abort certificate
    // can never both exist for the same round.
    bool promised_abort = false;
    size_t participation = 0;
    Bytes cleartext;
  };

  // Timer tokens carry (round-or-session << kTimerKindBits) | kind.
  // kWindowPolicy, kHardDeadline, and kAbortDeadline belong to the round
  // pipeline; kBlameCollect backstops the blame-shuffle collection window,
  // kBlameRebuttal the accused client's answer (a silent client concedes),
  // and kVerdictShares the agreement exchange (missing shares downgrade the
  // verdict to inconclusive). kRetransmit (id always 0) is the mailbox's
  // repeating sweep.
  enum TimerKind : uint64_t {
    kWindowPolicy = 0,
    kHardDeadline = 1,
    kBlameCollect = 2,
    kBlameRebuttal = 3,
    kVerdictShares = 4,
    kRetransmit = 5,
    kAbortDeadline = 6,
    // Repeating catch-up retry (id always 0); never stale.
    kServerCatchUp = 7,
  };
  static uint64_t Token(uint64_t round, TimerKind kind) {
    return (round << kTimerKindBits) | kind;
  }

  // One blame instance (§3.9); at most one runs at a time, and all round
  // pipelining is suspended while it does.
  struct BlameState {
    bool pending = false;  // flagged; waiting for in-flight rounds to drain
    bool active = false;
    uint64_t session = 0;
    // Collection: fixed-width rows from this server's attached clients
    // (row bytes + the client's signature over them).
    bool collecting = false;
    std::map<uint32_t, std::pair<Bytes, Bytes>> collected;
    std::vector<std::optional<std::vector<wire::BlameRosterEntry>>> rosters;
    // Cascade: the merged matrix walks through every server's verified mix.
    bool mixing = false;
    std::vector<std::optional<Bytes>> mix_steps;  // serialized, per server
    CiphertextMatrix cascade;
    size_t steps_verified = 0;
    bool own_step_sent = false;
    bool shuffle_ran = false;
    // Trace: the decoded accusation plus every server's disclosure.
    bool tracing = false;
    std::optional<SignedAccusation> accusation;
    bool accusation_found = false;
    bool accusation_valid = false;
    std::vector<std::optional<wire::TraceEvidence>> disclosures;
    TraceVerdict trace;
    // Rebuttal: the accused client's answer (or its absence).
    bool awaiting_rebuttal = false;
    uint32_t accused = 0;
    std::vector<bool> accused_pad_bits;  // per server, for the challenge
    // A peer's forwarded rebuttal that arrived while a straggling
    // TraceEvidence still held our own trace back; replayed after tracing.
    std::optional<wire::BlameRebuttal> pending_rebuttal;
    // Verdict agreement: our proposed verdict and every server's verified
    // share over it (shares from faster peers are stored before we propose
    // and compared once we do).
    bool awaiting_shares = false;
    uint8_t proposed_kind = 0;
    uint32_t proposed_culprit = 0;
    uint64_t proposed_round = 0;
    std::vector<std::optional<wire::VerdictShare>> shares;
  };

  RoundState* FindRound(uint64_t round);
  void StartRound(uint64_t round, int64_t now_us, Actions& a);
  // The pre-reliability HandleMessage body: dispatches one already-unwrapped
  // message. The public entry point peels Reliable/Ack frames first.
  void DispatchMessage(const Peer& from, const WireMessage& msg, int64_t now_us, Actions& a);
  void HandleServerPhase(uint32_t sender, const WireMessage& msg, int64_t now_us, Actions& a);
  void Broadcast(WireMessage msg, Actions& a);
  void MaybeArmWindowTimer(uint64_t round, int64_t now_us, Actions& a);
  void CloseWindow(uint64_t round, Actions& a);
  void MaybeBuildCiphertext(uint64_t round, Actions& a);
  void MaybeShareCiphertext(uint64_t round, Actions& a);
  void MaybeCertify(uint64_t round, Actions& a);
  void ReofferRoundFrames(uint64_t round, uint32_t sender, Actions& a);
  void MaybeFinishRounds(int64_t now_us, Actions& a);
  bool AllPresent(const std::vector<std::optional<Bytes>>& v) const;
  // Wraps unicast output in the mailbox and keeps the retransmit sweep
  // armed; every public entry point funnels its Actions through here.
  void Seal(Actions& a, int64_t now_us);
  // Finished/aborted-round bookkeeping shared by MaybeFinishRounds and the
  // abort path: retains the RoundSummary for catch-up serving.
  void RetainSummary(wire::RoundSummary summary);
  void HandleCatchUpRequest(const Peer& from, const wire::CatchUpRequest& req, Actions& a);
  void RecordAbortVote(uint64_t round, uint32_t server, int64_t now_us, Actions& a);
  void MaybeAbortRound(uint64_t round, int64_t now_us, Actions& a);

  // --- epoch-committed abort agreement (Config::abort_agreement) ---
  // The shared abort aftermath (deactivate, advance the logic's schedule
  // with a zero cleartext, notify clients, reopen the pipeline) — called by
  // the legacy unanimity path and by certificate application.
  void ApplyAbort(uint64_t round, int64_t now_us, Actions& a);
  // Signs and broadcasts our AbortPrepare for the finish-frontier round at
  // the current epoch (idempotent re-broadcast on deadline re-arm).
  void BroadcastOwnPrepare(uint64_t round, int64_t now_us, Actions& a);
  void HandleAbortPrepare(const Peer& from, const wire::AbortPrepare& msg, int64_t now_us,
                          Actions& a);
  void HandleAbortCommit(const Peer& from, const wire::AbortCommit& msg, int64_t now_us,
                         Actions& a);
  // Assembles a certificate once >= M-1 verified prepares (ours among them)
  // exist for the frontier round at the current epoch.
  void MaybeAssembleAbortCert(uint64_t round, int64_t now_us, Actions& a);
  bool VerifyAbortCert(const wire::AbortCommit& cert, uint64_t epoch) const;
  // Applies a verified certificate for the frontier round and replays any
  // stashed in-window successors that became applicable.
  void CommitAbortCert(wire::AbortCommit cert, int64_t now_us, Actions& a);

  // --- server catch-up (stale-snapshot re-admission) ---
  void BeginServerCatchUp(int64_t now_us, Actions& a);
  void SendServerCatchUpRequest(Actions& a);
  void HandleServerCatchUpRequest(const Peer& from, const wire::ServerCatchUpRequest& req,
                                  Actions& a);
  void HandleServerCatchUpBatch(const Peer& from, const wire::ServerCatchUpBatch& batch,
                                int64_t now_us, Actions& a);

  // --- blame sub-phase (§3.9) ---
  bool IsAttached(uint32_t client) const;
  size_t ExpectedBlameSubmitters() const;
  void MaybeStartBlame(int64_t now_us, Actions& a);
  void HandleBlameMessage(const Peer& from, const WireMessage& msg, int64_t now_us, Actions& a);
  void BufferEarlyBlame(uint32_t sender, const WireMessage& msg);
  void CloseBlameCollection(int64_t now_us, Actions& a);
  void MaybeAssembleBlameMatrix(int64_t now_us, Actions& a);
  void TryAdvanceCascade(int64_t now_us, Actions& a);
  void DecodeBlameAccusation(int64_t now_us, Actions& a);
  void MaybeTrace(int64_t now_us, Actions& a);
  void HandleRebuttal(const wire::BlameRebuttal& msg, const Peer& from, int64_t now_us,
                      Actions& a);
  // Verdict reached locally: with agreement on, broadcast our signed share
  // and wait for every peer's before acting (ConcludeBlame); without it,
  // conclude immediately.
  void FinishBlame(uint8_t kind, uint32_t culprit, int64_t now_us, Actions& a);
  void HandleVerdictShare(const wire::VerdictShare& share, const Peer& from, int64_t now_us,
                          Actions& a);
  void MaybeAgreeVerdict(int64_t now_us, Actions& a);
  void ConcludeBlame(uint8_t kind, uint32_t culprit, bool agreed, int64_t now_us, Actions& a);

  DissentServer* logic_;
  const GroupDef& def_;
  Config config_;
  size_t index_;
  size_t num_servers_;

  std::vector<RoundState> rounds_;  // ring of in-flight rounds
  // Server-phase messages for rounds we have not opened yet (a faster peer
  // can be a full phase ahead); replayed on StartRound. Bounded.
  std::map<uint64_t, std::vector<std::pair<uint32_t, WireMessage>>> early_;
  uint64_t next_round_to_start_ = 1;
  uint64_t next_round_to_finish_ = 1;
  uint64_t rounds_completed_ = 0;
  size_t last_participation_ = 0;
  size_t last_window_observed_ = 0;
  uint64_t pipelined_submissions_ = 0;
  bool halted_ = false;

  BlameState blame_;
  // Server-gossiped blame messages that outpaced our own pipeline drain
  // (a peer can finish, collect, and roster while our last round's
  // signatures are still in flight). One slot per (sender, type); replayed
  // when the blame instance activates.
  std::vector<std::pair<uint32_t, WireMessage>> blame_early_;
  uint64_t blames_completed_ = 0;
  size_t blame_width_ = 0;  // ElGamal row width of a kAccusationBytes payload
  size_t expelled_attached_ = 0;

  ReliableMailbox mailbox_;
  bool retransmit_armed_ = false;
  // Finished/aborted rounds retained for CatchUpRequest serving, newest at
  // the back, capped at Config::output_history.
  std::deque<wire::RoundSummary> recent_;
  // RoundAbort votes per round (one bit per server), erased on resolution.
  // Legacy path only (Config::abort_agreement == false).
  std::map<uint64_t, std::vector<bool>> abort_votes_;
  uint64_t rounds_aborted_ = 0;

  // --- epoch-committed abort agreement state ---
  // Verified prepares per round: server -> (epoch, signature). Our own entry
  // doubles as the promise marker — once present, MaybeCertify withholds our
  // SignatureShare for that round, so a certificate and a certified output
  // cannot both form from the frames we send after voting.
  std::map<uint64_t, std::map<uint32_t, std::pair<uint64_t, Bytes>>> abort_prepares_;
  // Certificates for rounds ahead of the finish frontier (a healed peer can
  // be several aborts ahead); applied in order as the frontier reaches them.
  std::map<uint64_t, wire::AbortCommit> pending_certs_;
  // Applied certificates, retained alongside recent_ for catch-up serving
  // and for idempotent re-delivery, pruned to Config::output_history.
  std::map<uint64_t, wire::AbortCommit> abort_certs_;
  // Server catch-up: set when a restored snapshot's frontier trails the
  // fleet (detected via a stale prepare or an out-of-window certificate);
  // cleared when the gap closes to <= pipeline_depth and the pipeline
  // reopens.
  bool catching_up_ = false;
  bool catchup_timer_armed_ = false;
  uint64_t catch_up_rounds_ = 0;
};

class ClientEngine {
 public:
  struct Config {
    uint32_t upstream_server = 0;
    size_t pipeline_depth = 1;  // must match the logic's pipeline_depth
    // Event-driven transports leave this on: processing round r's output
    // immediately builds and submits round r+depth. A synchronous transport
    // (the in-process Coordinator) turns it off and paces submissions itself
    // via SubmitRound, so application sends queued between rounds still make
    // the next round.
    bool auto_submit = true;
    // Ack/retransmit layer for the upstream link (see ReliableMailbox).
    ReliabilityConfig reliability;
    // Resynchronization after a missed output: when nonzero, outputs are
    // ingested strictly sequentially (out-of-order arrivals are stashed) and
    // a repeating timer that sees no forward progress for this long sends a
    // CatchUpRequest upstream — answered with signed RoundSummary frames —
    // and re-submits the retained in-flight ciphertexts (a crashed server
    // may have lost acked-but-unprocessed submissions). 0 keeps the
    // historical gap-tolerant ProcessOutput behaviour and arms no timers.
    int64_t resync_timeout_us = 0;
  };

  // One verified round output, decoded.
  struct Delivery {
    uint64_t round = 0;
    bool signatures_ok = false;
    bool own_slot_disrupted = false;
    std::vector<std::pair<size_t, Bytes>> messages;
    Bytes cleartext;
  };

  struct Actions {
    std::vector<Envelope> out;
    std::vector<TimerRequest> timers;
    std::vector<Delivery> delivered;
    // Blame verdicts received from the upstream server (§3.9), in order.
    std::vector<wire::BlameVerdict> verdicts;
  };

  ClientEngine(DissentClient* logic, const GroupDef& def, Config config);

  // Submits ciphertexts for rounds 1..pipeline_depth. Call once, after the
  // key shuffle assigned slots.
  Actions StartSession(int64_t now_us);
  Actions HandleMessage(const Peer& from, const WireMessage& msg, int64_t now_us);
  Actions HandleTimer(uint64_t token, int64_t now_us);
  // Build and submit a specific round's ciphertext (transport-driven
  // resynchronization, e.g. after a reconnect catch-up).
  Actions SubmitRound(uint64_t round, int64_t now_us);

  DissentClient& logic() { return *logic_; }
  // True once a BlameVerdict expelled this client; it stops submitting.
  bool expelled() const { return expelled_; }
  uint64_t last_output_round() const { return last_output_round_; }
  uint64_t retransmits() const { return mailbox_.retransmits(); }

  // Client timer kinds (same (id << kTimerKindBits) | kind layout as the
  // server's; both ride id 0 and re-arm themselves, so transports must
  // never prune client tokens).
  enum TimerKind : uint64_t {
    kClientRetransmit = 0,
    kClientResync = 1,
  };

 private:
  static uint64_t Token(uint64_t id, TimerKind kind) {
    return (id << ServerEngine::kTimerKindBits) | kind;
  }
  void Submit(uint64_t round, Actions& a);
  void SendUpstream(WireMessage msg, Actions& a);
  void AnswerBlameStart(uint64_t session, Actions& a);
  void Seal(Actions& a, int64_t now_us);
  // The pre-reliability HandleMessage body (the public entry point peels
  // Reliable/Ack frames first).
  void Dispatch(const Peer& from, const WireMessage& msg, int64_t now_us, Actions& a);
  // Shared ingest for Output and RoundSummary frames: replay-guarded,
  // strictly sequential in resync mode (stashing out-of-order arrivals and
  // draining the stash afterwards), and the only place the submit chain and
  // blame deferral advance.
  void IngestRound(uint64_t round, bool aborted, const Bytes& cleartext,
                   const std::vector<Bytes>& signatures, uint64_t final_round, int64_t now_us,
                   Actions& a);
  void ApplyRound(uint64_t round, bool aborted, const Bytes& cleartext,
                  const std::vector<Bytes>& signatures, int64_t now_us, Actions& a);
  // True once we have processed the outputs of every round the servers
  // drained before opening the blame instance (session .. session+depth-1).
  bool SeenDrainedOutputs(uint64_t session) const {
    return last_output_round_ + 1 >= session + config_.pipeline_depth;
  }

  DissentClient* logic_;
  const GroupDef& def_;
  Config config_;
  uint64_t last_output_round_ = 0;  // replay guard: outputs move forward only
  // Blame deferral (§3.9): after a flagged output, auto-submission pauses
  // (the servers stopped opening rounds) and the held rounds flush when the
  // verdict arrives — so submissions are never dropped against unopened
  // rounds and the pipeline resumes without a stall.
  bool blame_hold_ = false;
  std::vector<uint64_t> deferred_;
  // A BlameStart that arrived before the flagged round's output (small
  // frames can overtake large ones on bandwidth-modeled links): answered
  // only once every drained output has been processed, so the accusation
  // that rides the shuffle is the same on every transport and ordering.
  std::optional<uint64_t> pending_blame_start_;
  uint64_t last_verdict_session_ = 0;
  // Duplicate-BlameStart guard: answering twice would consume the pending
  // accusation (and an rng draw) a second time.
  uint64_t last_answered_blame_session_ = 0;
  bool expelled_ = false;

  ReliableMailbox mailbox_;
  bool retransmit_armed_ = false;
  bool resync_armed_ = false;
  // Highest fleet frontier any RoundSummary advertised; while it exceeds
  // last_output_round_ the resync timer requests the next catch-up batch
  // every tick (not only on stall).
  uint64_t catchup_final_round_ = 0;
  // Resync mode: certified rounds that arrived ahead of the sequential
  // frontier, waiting for the gap to fill (bounded; far-future arrivals are
  // re-fetched via catch-up instead).
  struct StashedRound {
    bool aborted = false;
    Bytes cleartext;
    std::vector<Bytes> signatures;
  };
  std::map<uint64_t, StashedRound> stash_;
  // Recently submitted ciphertexts (round -> the sent ClientSubmit),
  // re-sent on a stalled resync timer; pruned as outputs arrive.
  std::map<uint64_t, std::shared_ptr<const WireMessage>> sent_submits_;
  int64_t last_progress_us_ = 0;
};

}  // namespace dissent

#endif  // DISSENT_CORE_ENGINE_H_
