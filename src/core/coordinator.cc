#include "src/core/coordinator.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "src/core/dcnet.h"
#include "src/core/output_cert.h"

namespace dissent {

Coordinator::Coordinator(GroupDef def, std::vector<BigInt> server_privs,
                         std::vector<BigInt> client_privs, uint64_t seed)
    : def_(std::move(def)), rng_(SecureRng::FromLabel(seed)) {
  assert(server_privs.size() == def_.num_servers());
  assert(client_privs.size() == def_.num_clients());
  for (size_t i = 0; i < client_privs.size(); ++i) {
    clients_.push_back(
        std::make_unique<DissentClient>(def_, i, client_privs[i], rng_.Fork()));
  }
  for (size_t j = 0; j < server_privs.size(); ++j) {
    servers_.push_back(
        std::make_unique<DissentServer>(def_, j, server_privs[j], rng_.Fork()));
  }
  server_privs_ = std::move(server_privs);
  online_.assign(clients_.size(), true);
  last_seen_round_.assign(clients_.size(), 0);
  // The engines own all round sequencing; this class only delivers their
  // envelopes (zero latency) and fires their timers (virtual clock).
  attached_.resize(servers_.size());
  for (size_t j = 0; j < servers_.size(); ++j) {
    ServerEngine::Config cfg;
    cfg.window_fraction = def_.policy.window_fraction;
    cfg.window_multiplier = def_.policy.window_multiplier;
    cfg.hard_deadline_us = def_.policy.hard_deadline;
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (i % servers_.size() == j) {
        cfg.attached_clients.push_back(static_cast<uint32_t>(i));
      }
    }
    attached_[j] = cfg.attached_clients;
    server_engines_.push_back(
        std::make_unique<ServerEngine>(servers_[j].get(), def_, std::move(cfg)));
  }
  for (size_t i = 0; i < clients_.size(); ++i) {
    ClientEngine::Config cfg;
    cfg.upstream_server = static_cast<uint32_t>(i % servers_.size());
    // This transport is synchronous: submissions are paced by RunRound (so a
    // message queued between rounds still makes the next round, as the
    // step-by-step reference semantics promise).
    cfg.auto_submit = false;
    client_engines_.push_back(
        std::make_unique<ClientEngine>(clients_[i].get(), def_, cfg));
  }
}

bool Coordinator::RunScheduling() {
  const auto sched_start = std::chrono::steady_clock::now();
  // Clients submit encrypted pseudonym keys.
  CiphertextMatrix submissions;
  submissions.reserve(clients_.size());
  for (auto& c : clients_) {
    submissions.push_back(EncryptPseudonymKey(def_, c->pseudonym().pub, rng_));
  }
  // Servers run the mix cascade; everyone verifies it.
  ShuffleCascadeResult cascade = RunShuffleCascade(def_, server_privs_, submissions, rng_);
  if (!VerifyShuffleCascade(def_, submissions, cascade)) {
    return false;
  }
  scheduling_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sched_start).count();
  // The final b components are the pseudonym keys, in shuffled order.
  pseudonym_keys_.clear();
  for (const auto& row : cascade.final_rows) {
    pseudonym_keys_.push_back(row[0].b);
  }
  return FinishScheduling();
}

bool Coordinator::RunSchedulingDirect() {
  // Identity assignment: slot i belongs to client i. Everything downstream
  // of scheduling (round path, accusations) behaves identically; only the
  // unlinkability of the slot<->client mapping is gone.
  pseudonym_keys_.clear();
  for (auto& c : clients_) {
    pseudonym_keys_.push_back(c->pseudonym().pub);
  }
  return FinishScheduling();
}

bool Coordinator::RunSchedulingExternal(std::vector<BigInt> keys) {
  if (keys.size() != clients_.size()) {
    return false;
  }
  pseudonym_keys_ = std::move(keys);
  return FinishScheduling();
}

bool Coordinator::FinishScheduling() {
  // Each client locates its own key; that index is its slot (known only to
  // the client in a real deployment; the coordinator stores the mapping for
  // test assertions but never feeds it back into protocol logic).
  slot_of_client_.assign(clients_.size(), 0);
  for (size_t i = 0; i < clients_.size(); ++i) {
    auto it = std::find(pseudonym_keys_.begin(), pseudonym_keys_.end(),
                        clients_[i]->pseudonym().pub);
    if (it == pseudonym_keys_.end()) {
      return false;
    }
    size_t slot = static_cast<size_t>(it - pseudonym_keys_.begin());
    slot_of_client_[i] = slot;
    clients_[i]->AssignSlot(slot, pseudonym_keys_.size());
  }
  for (auto& s : servers_) {
    s->BeginSlots(pseudonym_keys_.size());
    // The blame sub-phase validates accusation signatures server-side.
    s->SetPseudonymKeys(pseudonym_keys_);
  }
  // Open round 1 on every server; clients submit per RunRound call.
  for (size_t j = 0; j < server_engines_.size(); ++j) {
    DispatchServerActions(j, server_engines_[j]->StartSession(vnow_));
  }
  session_started_ = true;
  return true;
}

void Coordinator::SetClientOnline(size_t i, bool online) {
  if (online && !online_[i]) {
    // On reconnect the client fetches the signed outputs it missed and
    // replays them so its slot schedule stays in lockstep (§3.6: servers
    // never stall for it; catching up is the client's job).
    for (const auto& [r, rec] : history_) {
      if (r > last_seen_round_[i]) {
        clients_[i]->CatchUp(r, rec.cleartext);
        last_seen_round_[i] = r;
      }
    }
    // Resynchronized; the next RunRound submits for it again.
  }
  online_[i] = online;
}

void Coordinator::DispatchServerActions(size_t j, ServerEngine::Actions actions) {
  for (Envelope& env : actions.out) {
    if (env.to.kind == Peer::Kind::kAttachedClients) {
      // Broadcast expansion: one engine envelope fans out to the server's
      // attachment set; every copy shares the same message object.
      for (uint32_t c : attached_[env.to.index]) {
        queue_.push_back({ServerPeer(static_cast<uint32_t>(j)), ClientPeer(c), env.msg});
      }
      continue;
    }
    queue_.push_back({ServerPeer(static_cast<uint32_t>(j)), env.to, std::move(env.msg)});
  }
  for (const TimerRequest& t : actions.timers) {
    timers_.push_back({vnow_ + t.delay_us, timer_seq_++, j, t.token, false});
    std::push_heap(timers_.begin(), timers_.end(), TimerLater());
  }
  for (ServerEngine::RoundDone& done : actions.done) {
    servers_done_count_[done.round]++;
    if (done.equivocating_server.has_value()) {
      equivocator_seen_[done.round] = *done.equivocating_server;
    }
    if (j == 0) {
      if (done.completed) {
        // History for offline clients' reconnect catch-up (§3.6).
        RoundRecord rec;
        rec.cleartext = done.cleartext;
        history_[done.round] = std::move(rec);
        if (history_.size() > DissentServer::kEvidenceRounds) {
          history_.erase(history_.begin());
        }
        last_participation_ = done.participation;
      }
      server0_done_[done.round] = std::move(done);
    }
  }
  for (ServerEngine::BlameDone& done : actions.blame) {
    // Verdicts are deterministic and identical on every honest server;
    // record server 0's and apply the membership change transport-side too.
    if (done.verdict.kind == wire::BlameVerdict::kClientExpelled) {
      expelled_clients_.insert(done.verdict.culprit);
    }
    if (j == 0) {
      last_blame_ = std::move(done);
    }
  }
}

void Coordinator::DispatchClientActions(size_t i, ClientEngine::Actions actions) {
  for (Envelope& env : actions.out) {
    queue_.push_back({ClientPeer(static_cast<uint32_t>(i)), env.to, std::move(env.msg)});
  }
  for (const TimerRequest& t : actions.timers) {
    timers_.push_back({vnow_ + t.delay_us, timer_seq_++, i, t.token, true});
    std::push_heap(timers_.begin(), timers_.end(), TimerLater());
  }
  for (ClientEngine::Delivery& d : actions.delivered) {
    assert(d.signatures_ok);
    last_seen_round_[i] = d.round;
    auto it = first_delivery_.find(d.round);
    if (it == first_delivery_.end() || it->second.first > i) {
      first_delivery_[d.round] = {i, std::move(d)};
    }
  }
}

void Coordinator::DeliverNextQueued() {
  QueuedMsg qm = std::move(queue_.front());
  queue_.pop_front();
  // Transport-level drops: offline or expelled clients neither send nor
  // receive (§3.6 — the other side cannot tell the difference). Exception:
  // the BlameVerdict that expels a client still reaches it (the expulsion
  // notice itself), since the engine recorded the expulsion before the
  // envelope was delivered.
  if (qm.from.kind == Peer::Kind::kClient &&
      (!online_[qm.from.index] || expelled_clients_.count(qm.from.index) != 0)) {
    return;
  }
  if (qm.to.kind == Peer::Kind::kClient &&
      (!online_[qm.to.index] ||
       (expelled_clients_.count(qm.to.index) != 0 &&
        !std::holds_alternative<wire::BlameVerdict>(*qm.msg)))) {
    return;
  }
  if (filter_ && !filter_(qm.from, qm.to, *qm.msg)) {
    return;  // test-injected in-flight drop
  }
  // Adversarial in-flight tampering (§3.9 test hooks). The payload may be
  // shared with sibling broadcast envelopes, so tamper on a private copy.
  if (disruptor_.has_value() && qm.from.kind == Peer::Kind::kClient &&
      qm.from.index == disruptor_->client) {
    if (const auto* submit = std::get_if<wire::ClientSubmit>(qm.msg.get())) {
      if (disruptor_->bit < submit->ciphertext.size() * 8) {
        auto mutated = std::make_shared<WireMessage>(*qm.msg);
        auto& ct = std::get<wire::ClientSubmit>(*mutated).ciphertext;
        SetBit(ct, disruptor_->bit, !GetBit(ct, disruptor_->bit));
        qm.msg = std::move(mutated);
      }
    }
  }
  if (equivocator_.has_value() && qm.from.kind == Peer::Kind::kServer &&
      qm.from.index == *equivocator_) {
    if (const auto* sct = std::get_if<wire::ServerCiphertext>(qm.msg.get())) {
      if (!sct->ciphertext.empty()) {
        auto mutated = std::make_shared<WireMessage>(*qm.msg);
        std::get<wire::ServerCiphertext>(*mutated).ciphertext[0] ^= 1;
        qm.msg = std::move(mutated);
      }
    }
  }
  // Fig 9 phase buckets: wall time spent processing blame messages, split
  // into the shuffle leg and the trace/rebuttal leg. One variant-index
  // check gates all of it, so the per-message hot path (millions of
  // ClientSubmit/Output deliveries at scale) pays nothing.
  const bool is_blame = IsBlamePhaseMessage(*qm.msg);
  std::chrono::steady_clock::time_point deliver_start;
  if (is_blame) {
    deliver_start = std::chrono::steady_clock::now();
  }
  const int copies = duplicate_delivery_ ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    if (qm.to.kind == Peer::Kind::kServer) {
      DispatchServerActions(
          qm.to.index, server_engines_[qm.to.index]->HandleMessage(qm.from, *qm.msg, vnow_));
    } else {
      DispatchClientActions(
          qm.to.index, client_engines_[qm.to.index]->HandleMessage(qm.from, *qm.msg, vnow_));
    }
  }
  if (is_blame) {
    const bool is_shuffle_leg = std::holds_alternative<wire::BlameStart>(*qm.msg) ||
                                std::holds_alternative<wire::AccusationSubmit>(*qm.msg) ||
                                std::holds_alternative<wire::BlameRoster>(*qm.msg) ||
                                std::holds_alternative<wire::BlameMix>(*qm.msg);
    double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - deliver_start).count();
    (is_shuffle_leg ? blame_shuffle_seconds_ : blame_trace_seconds_) += secs;
  }
}

void Coordinator::FireEarliestTimer() {
  std::pop_heap(timers_.begin(), timers_.end(), TimerLater());
  PendingTimer t = timers_.back();
  timers_.pop_back();
  vnow_ = std::max(vnow_, t.due);
  if (t.client_owned) {
    DispatchClientActions(t.owner, client_engines_[t.owner]->HandleTimer(t.token, vnow_));
  } else {
    DispatchServerActions(t.owner, server_engines_[t.owner]->HandleTimer(t.token, vnow_));
  }
}

bool Coordinator::RoundResolved(uint64_t round) const {
  auto eq = equivocator_seen_.find(round);
  if (eq != equivocator_seen_.end()) {
    // The cheater's own engine never reports; all honest engines have.
    auto cnt = servers_done_count_.find(round);
    return cnt != servers_done_count_.end() && cnt->second + 1 >= servers_.size();
  }
  auto cnt = servers_done_count_.find(round);
  return cnt != servers_done_count_.end() && cnt->second == servers_.size();
}

Coordinator::RoundOutcome Coordinator::RunRound() {
  RoundOutcome outcome;
  outcome.round = next_round_;
  if (halted_ || !session_started_) {
    // Do not consume a round number: the engines never opened (or will never
    // finish) it, and burning one would desynchronize every later call.
    return outcome;
  }
  const uint64_t round = next_round_++;

  // Step 1: online, non-expelled clients build and submit ciphertexts for
  // this round through their engines (client i -> server i mod M).
  for (size_t i = 0; i < client_engines_.size(); ++i) {
    if (!online_[i] || expelled_clients_.count(i) != 0) {
      continue;
    }
    DispatchClientActions(i, client_engines_[i]->SubmitRound(round, vnow_));
  }

  // Pump: deliver everything in flight; when the system goes quiet, fire the
  // earliest pending timer (this is what closes submission windows). Stop
  // firing timers once the round resolves, then drain the trailing envelopes
  // (the next round's submissions) so they are queued for the next call.
  while (!RoundResolved(round)) {
    if (!queue_.empty()) {
      DeliverNextQueued();
      continue;
    }
    if (timers_.empty()) {
      break;  // stalled: nothing in flight and nothing scheduled
    }
    FireEarliestTimer();
  }
  while (!queue_.empty()) {
    DeliverNextQueued();
  }

  auto eq = equivocator_seen_.find(round);
  if (eq != equivocator_seen_.end()) {
    outcome.equivocating_server = eq->second;
    halted_ = true;  // round aborted; cheater identified; group re-forms
  }
  auto done = server0_done_.find(round);
  if (done != server0_done_.end() && done->second.completed &&
      !outcome.equivocating_server.has_value()) {
    outcome.completed = true;
    outcome.participation = done->second.participation;
    outcome.below_alpha = done->second.below_alpha;
    outcome.accusation_requested = done->second.accusation_requested;
    outcome.cleartext = done->second.cleartext;
  }
  auto del = first_delivery_.find(round);
  if (del != first_delivery_.end()) {
    outcome.messages = del->second.second.messages;
  }
  // Drop per-round bookkeeping that can no longer be queried, and prune the
  // resolved rounds' never-fired hard-deadline backstops from the heap
  // (otherwise they accumulate one per server per round for the session).
  // Blame timers (token kinds 2/3) are pruned only when no blame instance is
  // pending anywhere — a live instance may still need its backstops.
  server0_done_.erase(server0_done_.begin(), server0_done_.upper_bound(round));
  servers_done_count_.erase(servers_done_count_.begin(),
                            servers_done_count_.upper_bound(round));
  first_delivery_.erase(first_delivery_.begin(), first_delivery_.upper_bound(round));
  bool blame_live = false;
  for (const auto& engine : server_engines_) {
    blame_live |= engine->blame_in_progress();
  }
  auto stale = std::remove_if(timers_.begin(), timers_.end(),
                              [round, blame_live](const PendingTimer& t) {
                                // Client timers are self-rearming heartbeats
                                // (retransmit/resync) — never stale by round.
                                if (t.client_owned) {
                                  return false;
                                }
                                return ServerEngine::TimerStaleAfterRound(t.token, round,
                                                                          blame_live);
                              });
  if (stale != timers_.end()) {
    timers_.erase(stale, timers_.end());
    std::make_heap(timers_.begin(), timers_.end(), TimerLater());
  }
  return outcome;
}

Coordinator::AccusationOutcome Coordinator::RunAccusationPhase() {
  // The blame machinery lives in the engines (§3.9 as a first-class protocol
  // phase): a flagged round drains the pipeline and runs the accusation
  // shuffle -> trace -> rebuttal -> BlameVerdict flow through the same
  // message pump as the rounds themselves. This driver only keeps rounds
  // turning until the verdict lands — the victim may first need a
  // request-bit round to reopen a garbled slot and raise its shuffle-request
  // field — then translates the engine report into the legacy outcome shape.
  for (int i = 0; i < 64 && !last_blame_.has_value() && !halted_; ++i) {
    bool blame_live = false;
    for (const auto& engine : server_engines_) {
      blame_live |= engine->blame_in_progress();
    }
    if (i >= 6 && !blame_live) {
      break;  // no request surfaced and nothing is in flight: nothing to do
    }
    RunRound();
  }
  AccusationOutcome outcome;
  if (!last_blame_.has_value()) {
    return outcome;
  }
  const ServerEngine::BlameDone& done = *last_blame_;
  outcome.shuffle_ran = done.shuffle_ran;
  outcome.accusation_found = done.accusation_found;
  outcome.accusation_valid = done.accusation_valid;
  outcome.verdict = done.trace;
  switch (done.verdict.kind) {
    case wire::BlameVerdict::kClientExpelled:
      outcome.expelled_client = done.verdict.culprit;
      break;
    case wire::BlameVerdict::kServerExposed:
      outcome.expelled_server = done.verdict.culprit;
      break;
    default:
      break;
  }
  outcome.shuffle_seconds = blame_shuffle_seconds_;
  outcome.trace_seconds = blame_trace_seconds_;
  // Consume: the buckets accumulated since the previous report belong to
  // this instance, whether it resolved here or inside earlier RunRounds.
  blame_shuffle_seconds_ = 0;
  blame_trace_seconds_ = 0;
  last_blame_.reset();
  return outcome;
}

void Coordinator::InjectDisruptor(size_t disruptor, size_t bit) {
  disruptor_ = DisruptorHook{disruptor, bit};
}

void Coordinator::InjectEquivocatingServer(size_t server_index) {
  equivocator_ = server_index;
}

void Coordinator::InjectTraceLiar(size_t server_index, size_t about_client) {
  // Logic-level hook: the lying server publishes (and itself consumes) a
  // self-consistent forged TraceEvidence, exactly as a real cheater would.
  servers_[server_index]->InjectTraceLie(about_client);
}

}  // namespace dissent
