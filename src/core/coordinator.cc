#include "src/core/coordinator.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "src/core/dcnet.h"
#include "src/core/output_cert.h"

namespace dissent {

namespace {
// Fixed serialized size budget for accusation-shuffle messages; all clients
// submit the same width so accusers are indistinguishable from non-accusers.
constexpr size_t kAccusationBytes = 160;
}  // namespace

Coordinator::Coordinator(GroupDef def, std::vector<BigInt> server_privs,
                         std::vector<BigInt> client_privs, uint64_t seed)
    : def_(std::move(def)), rng_(SecureRng::FromLabel(seed)) {
  assert(server_privs.size() == def_.num_servers());
  assert(client_privs.size() == def_.num_clients());
  for (size_t i = 0; i < client_privs.size(); ++i) {
    clients_.push_back(
        std::make_unique<DissentClient>(def_, i, client_privs[i], rng_.Fork()));
  }
  for (size_t j = 0; j < server_privs.size(); ++j) {
    servers_.push_back(
        std::make_unique<DissentServer>(def_, j, server_privs[j], rng_.Fork()));
  }
  server_privs_ = std::move(server_privs);
  online_.assign(clients_.size(), true);
  last_seen_round_.assign(clients_.size(), 0);
  // The engines own all round sequencing; this class only delivers their
  // envelopes (zero latency) and fires their timers (virtual clock).
  attached_.resize(servers_.size());
  for (size_t j = 0; j < servers_.size(); ++j) {
    ServerEngine::Config cfg;
    cfg.window_fraction = def_.policy.window_fraction;
    cfg.window_multiplier = def_.policy.window_multiplier;
    cfg.hard_deadline_us = def_.policy.hard_deadline;
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (i % servers_.size() == j) {
        cfg.attached_clients.push_back(static_cast<uint32_t>(i));
      }
    }
    attached_[j] = cfg.attached_clients;
    server_engines_.push_back(
        std::make_unique<ServerEngine>(servers_[j].get(), def_, std::move(cfg)));
  }
  for (size_t i = 0; i < clients_.size(); ++i) {
    ClientEngine::Config cfg;
    cfg.upstream_server = static_cast<uint32_t>(i % servers_.size());
    // This transport is synchronous: submissions are paced by RunRound (so a
    // message queued between rounds still makes the next round, as the
    // step-by-step reference semantics promise).
    cfg.auto_submit = false;
    client_engines_.push_back(
        std::make_unique<ClientEngine>(clients_[i].get(), def_, cfg));
  }
}

bool Coordinator::RunScheduling() {
  // Clients submit encrypted pseudonym keys.
  CiphertextMatrix submissions;
  submissions.reserve(clients_.size());
  for (auto& c : clients_) {
    submissions.push_back(EncryptPseudonymKey(def_, c->pseudonym().pub, rng_));
  }
  // Servers run the mix cascade; everyone verifies it.
  ShuffleCascadeResult cascade = RunShuffleCascade(def_, server_privs_, submissions, rng_);
  if (!VerifyShuffleCascade(def_, submissions, cascade)) {
    return false;
  }
  // The final b components are the pseudonym keys, in shuffled order.
  pseudonym_keys_.clear();
  for (const auto& row : cascade.final_rows) {
    pseudonym_keys_.push_back(row[0].b);
  }
  return FinishScheduling();
}

bool Coordinator::RunSchedulingDirect() {
  // Identity assignment: slot i belongs to client i. Everything downstream
  // of scheduling (round path, accusations) behaves identically; only the
  // unlinkability of the slot<->client mapping is gone.
  pseudonym_keys_.clear();
  for (auto& c : clients_) {
    pseudonym_keys_.push_back(c->pseudonym().pub);
  }
  return FinishScheduling();
}

bool Coordinator::FinishScheduling() {
  // Each client locates its own key; that index is its slot (known only to
  // the client in a real deployment; the coordinator stores the mapping for
  // test assertions but never feeds it back into protocol logic).
  slot_of_client_.assign(clients_.size(), 0);
  for (size_t i = 0; i < clients_.size(); ++i) {
    auto it = std::find(pseudonym_keys_.begin(), pseudonym_keys_.end(),
                        clients_[i]->pseudonym().pub);
    if (it == pseudonym_keys_.end()) {
      return false;
    }
    size_t slot = static_cast<size_t>(it - pseudonym_keys_.begin());
    slot_of_client_[i] = slot;
    clients_[i]->AssignSlot(slot, pseudonym_keys_.size());
  }
  for (auto& s : servers_) {
    s->BeginSlots(pseudonym_keys_.size());
  }
  // Open round 1 on every server; clients submit per RunRound call.
  for (size_t j = 0; j < server_engines_.size(); ++j) {
    DispatchServerActions(j, server_engines_[j]->StartSession(vnow_));
  }
  session_started_ = true;
  return true;
}

void Coordinator::SetClientOnline(size_t i, bool online) {
  if (online && !online_[i]) {
    // On reconnect the client fetches the signed outputs it missed and
    // replays them so its slot schedule stays in lockstep (§3.6: servers
    // never stall for it; catching up is the client's job).
    for (const auto& [r, rec] : history_) {
      if (r > last_seen_round_[i]) {
        clients_[i]->CatchUp(r, rec.cleartext);
        last_seen_round_[i] = r;
      }
    }
    // Resynchronized; the next RunRound submits for it again.
  }
  online_[i] = online;
}

void Coordinator::DispatchServerActions(size_t j, ServerEngine::Actions actions) {
  for (Envelope& env : actions.out) {
    if (env.to.kind == Peer::Kind::kAttachedClients) {
      // Broadcast expansion: one engine envelope fans out to the server's
      // attachment set; every copy shares the same message object.
      for (uint32_t c : attached_[env.to.index]) {
        queue_.push_back({ServerPeer(static_cast<uint32_t>(j)), ClientPeer(c), env.msg});
      }
      continue;
    }
    queue_.push_back({ServerPeer(static_cast<uint32_t>(j)), env.to, std::move(env.msg)});
  }
  for (const TimerRequest& t : actions.timers) {
    timers_.push_back({vnow_ + t.delay_us, timer_seq_++, j, t.token});
    std::push_heap(timers_.begin(), timers_.end(), TimerLater());
  }
  for (ServerEngine::RoundDone& done : actions.done) {
    servers_done_count_[done.round]++;
    if (done.equivocating_server.has_value()) {
      equivocator_seen_[done.round] = *done.equivocating_server;
    }
    if (j == 0) {
      if (done.completed) {
        // History for accusation tracing.
        RoundRecord rec;
        rec.cleartext = done.cleartext;
        history_[done.round] = std::move(rec);
        if (history_.size() > DissentServer::kEvidenceRounds) {
          history_.erase(history_.begin());
        }
        last_participation_ = done.participation;
      }
      server0_done_[done.round] = std::move(done);
    }
  }
}

void Coordinator::DispatchClientActions(size_t i, ClientEngine::Actions actions) {
  for (Envelope& env : actions.out) {
    queue_.push_back({ClientPeer(static_cast<uint32_t>(i)), env.to, std::move(env.msg)});
  }
  for (ClientEngine::Delivery& d : actions.delivered) {
    assert(d.signatures_ok);
    last_seen_round_[i] = d.round;
    auto it = first_delivery_.find(d.round);
    if (it == first_delivery_.end() || it->second.first > i) {
      first_delivery_[d.round] = {i, std::move(d)};
    }
  }
}

void Coordinator::DeliverNextQueued() {
  QueuedMsg qm = std::move(queue_.front());
  queue_.pop_front();
  // Transport-level drops: offline or expelled clients neither send nor
  // receive (§3.6 — the other side cannot tell the difference).
  if (qm.from.kind == Peer::Kind::kClient &&
      (!online_[qm.from.index] || expelled_clients_.count(qm.from.index) != 0)) {
    return;
  }
  if (qm.to.kind == Peer::Kind::kClient &&
      (!online_[qm.to.index] || expelled_clients_.count(qm.to.index) != 0)) {
    return;
  }
  // Adversarial in-flight tampering (§3.9 test hooks). The payload may be
  // shared with sibling broadcast envelopes, so tamper on a private copy.
  if (disruptor_.has_value() && qm.from.kind == Peer::Kind::kClient &&
      qm.from.index == disruptor_->client) {
    if (const auto* submit = std::get_if<wire::ClientSubmit>(qm.msg.get())) {
      if (disruptor_->bit < submit->ciphertext.size() * 8) {
        auto mutated = std::make_shared<WireMessage>(*qm.msg);
        auto& ct = std::get<wire::ClientSubmit>(*mutated).ciphertext;
        SetBit(ct, disruptor_->bit, !GetBit(ct, disruptor_->bit));
        qm.msg = std::move(mutated);
      }
    }
  }
  if (equivocator_.has_value() && qm.from.kind == Peer::Kind::kServer &&
      qm.from.index == *equivocator_) {
    if (const auto* sct = std::get_if<wire::ServerCiphertext>(qm.msg.get())) {
      if (!sct->ciphertext.empty()) {
        auto mutated = std::make_shared<WireMessage>(*qm.msg);
        std::get<wire::ServerCiphertext>(*mutated).ciphertext[0] ^= 1;
        qm.msg = std::move(mutated);
      }
    }
  }
  if (qm.to.kind == Peer::Kind::kServer) {
    DispatchServerActions(
        qm.to.index, server_engines_[qm.to.index]->HandleMessage(qm.from, *qm.msg, vnow_));
  } else {
    DispatchClientActions(qm.to.index,
                          client_engines_[qm.to.index]->HandleMessage(qm.from, *qm.msg));
  }
}

void Coordinator::FireEarliestTimer() {
  std::pop_heap(timers_.begin(), timers_.end(), TimerLater());
  PendingTimer t = timers_.back();
  timers_.pop_back();
  vnow_ = std::max(vnow_, t.due);
  DispatchServerActions(t.server, server_engines_[t.server]->HandleTimer(t.token, vnow_));
}

bool Coordinator::RoundResolved(uint64_t round) const {
  auto eq = equivocator_seen_.find(round);
  if (eq != equivocator_seen_.end()) {
    // The cheater's own engine never reports; all honest engines have.
    auto cnt = servers_done_count_.find(round);
    return cnt != servers_done_count_.end() && cnt->second + 1 >= servers_.size();
  }
  auto cnt = servers_done_count_.find(round);
  return cnt != servers_done_count_.end() && cnt->second == servers_.size();
}

Coordinator::RoundOutcome Coordinator::RunRound() {
  RoundOutcome outcome;
  outcome.round = next_round_;
  if (halted_ || !session_started_) {
    // Do not consume a round number: the engines never opened (or will never
    // finish) it, and burning one would desynchronize every later call.
    return outcome;
  }
  const uint64_t round = next_round_++;

  // Step 1: online, non-expelled clients build and submit ciphertexts for
  // this round through their engines (client i -> server i mod M).
  for (size_t i = 0; i < client_engines_.size(); ++i) {
    if (!online_[i] || expelled_clients_.count(i) != 0) {
      continue;
    }
    DispatchClientActions(i, client_engines_[i]->SubmitRound(round));
  }

  // Pump: deliver everything in flight; when the system goes quiet, fire the
  // earliest pending timer (this is what closes submission windows). Stop
  // firing timers once the round resolves, then drain the trailing envelopes
  // (the next round's submissions) so they are queued for the next call.
  while (!RoundResolved(round)) {
    if (!queue_.empty()) {
      DeliverNextQueued();
      continue;
    }
    if (timers_.empty()) {
      break;  // stalled: nothing in flight and nothing scheduled
    }
    FireEarliestTimer();
  }
  while (!queue_.empty()) {
    DeliverNextQueued();
  }

  auto eq = equivocator_seen_.find(round);
  if (eq != equivocator_seen_.end()) {
    outcome.equivocating_server = eq->second;
    halted_ = true;  // round aborted; cheater identified; group re-forms
  }
  auto done = server0_done_.find(round);
  if (done != server0_done_.end() && done->second.completed &&
      !outcome.equivocating_server.has_value()) {
    outcome.completed = true;
    outcome.participation = done->second.participation;
    outcome.below_alpha = done->second.below_alpha;
    outcome.accusation_requested = done->second.accusation_requested;
    outcome.cleartext = done->second.cleartext;
  }
  auto del = first_delivery_.find(round);
  if (del != first_delivery_.end()) {
    outcome.messages = del->second.second.messages;
  }
  // Drop per-round bookkeeping that can no longer be queried, and prune the
  // resolved rounds' never-fired hard-deadline backstops from the heap
  // (otherwise they accumulate one per server per round for the session).
  server0_done_.erase(server0_done_.begin(), server0_done_.upper_bound(round));
  servers_done_count_.erase(servers_done_count_.begin(),
                            servers_done_count_.upper_bound(round));
  first_delivery_.erase(first_delivery_.begin(), first_delivery_.upper_bound(round));
  auto stale = std::remove_if(timers_.begin(), timers_.end(),
                              [round](const PendingTimer& t) { return (t.token >> 1) <= round; });
  if (stale != timers_.end()) {
    timers_.erase(stale, timers_.end());
    std::make_heap(timers_.begin(), timers_.end(), TimerLater());
  }
  return outcome;
}

Coordinator::AccusationOutcome Coordinator::RunAccusationPhase() {
  AccusationOutcome outcome;
  const auto shuffle_start = std::chrono::steady_clock::now();
  const size_t width = MessageBlockWidth(def_, kAccusationBytes);

  // Accusation shuffle: every online client submits a fixed-width message;
  // only victims place real accusations inside (§3.9 — the shuffle hides who
  // is accusing).
  CiphertextMatrix submissions;
  std::vector<size_t> submitters;
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!online_[i] || expelled_clients_.count(i) != 0) {
      continue;
    }
    Bytes payload;
    auto acc = clients_[i]->TakeAccusation();
    if (acc.has_value()) {
      payload = acc->Serialize(*def_.group);
      payload.resize(kAccusationBytes, 0);
    } else {
      payload.assign(kAccusationBytes, 0);
    }
    auto row = EncryptMessageBlocks(def_, payload, width, rng_);
    assert(row.has_value());
    submissions.push_back(*row);
    submitters.push_back(i);
  }
  if (submissions.size() < 2) {
    return outcome;
  }
  ShuffleCascadeResult cascade = RunShuffleCascade(def_, server_privs_, submissions, rng_);
  if (!VerifyShuffleCascade(def_, submissions, cascade)) {
    return outcome;
  }
  outcome.shuffle_ran = true;
  outcome.shuffle_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - shuffle_start).count();
  const auto trace_start = std::chrono::steady_clock::now();
  auto record_trace_time = [&outcome, trace_start] {
    outcome.trace_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - trace_start).count();
  };

  // Recover the (at most one, in this driver) real accusation.
  std::optional<SignedAccusation> accusation;
  for (const auto& row : cascade.final_rows) {
    auto payload = DecodeMessageBlocks(def_, row);
    if (!payload.has_value()) {
      continue;
    }
    // Trim the zero padding back off.
    Bytes trimmed = *payload;
    while (!trimmed.empty() && trimmed.back() == 0) {
      trimmed.pop_back();
    }
    if (trimmed.empty()) {
      continue;  // null filler from a non-accusing client
    }
    auto acc = SignedAccusation::Deserialize(*def_.group, *payload);
    if (!acc.has_value()) {
      // Re-try without padding (serialization is self-delimiting up to the
      // zero fill; Deserialize demands AtEnd, so strip zeros first).
      Bytes exact = *payload;
      while (exact.size() > 0 && exact.back() == 0) {
        exact.pop_back();
      }
      acc = SignedAccusation::Deserialize(*def_.group, exact);
    }
    if (acc.has_value()) {
      accusation = acc;
      break;
    }
  }
  if (!accusation.has_value()) {
    record_trace_time();
    return outcome;
  }
  outcome.accusation_found = true;

  // Validate against the recorded round output.
  auto hist = history_.find(accusation->accusation.round);
  if (hist == history_.end()) {
    return outcome;
  }
  const DissentServer::RoundEvidence* ev =
      servers_[0]->EvidenceFor(accusation->accusation.round);
  if (ev == nullptr) {
    return outcome;
  }
  // Slot span at that round comes from the servers' schedule history; the
  // reference driver recomputes it from the retained cleartext by replaying
  // the schedule (cheap at test scale): here we use the span recorded at
  // round time via the current server schedule only if the layout hasn't
  // changed. For robustness we recompute from the history.
  auto span = SlotSpanAtRound(accusation->accusation.round, accusation->accusation.slot);
  if (!span.has_value()) {
    return outcome;
  }
  if (!ValidateAccusation(def_, pseudonym_keys_, *accusation, hist->second.cleartext,
                          span->first, span->second)) {
    return outcome;
  }
  outcome.accusation_valid = true;

  // Gather tracing inputs from every server's evidence.
  const uint64_t round = accusation->accusation.round;
  const size_t bit = accusation->accusation.bit_index;
  TraceInputs in;
  in.round = round;
  in.bit_index = bit;
  in.composite_list = ev->composite_list;
  in.own_shares.resize(servers_.size());
  in.server_ct_bits.resize(servers_.size());
  in.pad_bits.resize(servers_.size());
  for (size_t j = 0; j < servers_.size(); ++j) {
    const auto* evj = servers_[j]->EvidenceFor(round);
    if (evj == nullptr) {
      return outcome;
    }
    in.own_shares[j] = evj->own_share;
    in.server_ct_bits[j] = GetBit(evj->server_ct, bit);
    for (uint32_t i : evj->own_share) {
      in.client_ct_bits[i] = GetBit(evj->received_cts.at(i), bit);
    }
    for (uint32_t i : evj->composite_list) {
      bool b = servers_[j]->PadBit(round, i, bit);
      if (trace_liar_.has_value() && trace_liar_->server == j && trace_liar_->client == i) {
        b = !b;  // the lying server flips its disclosed pad bit
      }
      in.pad_bits[j][i] = b;
    }
  }
  outcome.verdict = TraceDisruptor(def_, in);

  if (outcome.verdict.kind == TraceVerdict::Kind::kServerExposed) {
    outcome.expelled_server = outcome.verdict.culprit;
    record_trace_time();
    return outcome;
  }
  if (outcome.verdict.kind == TraceVerdict::Kind::kClientAccused) {
    size_t accused = outcome.verdict.culprit;
    // Rebuttal (§3.9): the accused client checks each server's published pad
    // bit against its own and, if one differs, exposes that server.
    std::optional<size_t> blamed_server;
    for (size_t j = 0; j < servers_.size(); ++j) {
      bool client_view = DcnetPadBit(clients_[accused]->server_keys()[j], round, bit);
      if (client_view != in.pad_bits[j].at(static_cast<uint32_t>(accused))) {
        blamed_server = j;
        break;
      }
    }
    if (blamed_server.has_value()) {
      Rebuttal rebuttal = clients_[accused]->BuildRebuttal(*blamed_server);
      auto rv = EvaluateRebuttal(def_, rebuttal, round, bit,
                                 in.pad_bits[*blamed_server].at(
                                     static_cast<uint32_t>(accused)));
      if (rv.valid_proof && rv.server_lied) {
        outcome.expelled_server = *blamed_server;
        record_trace_time();
        return outcome;
      }
    }
    // No (successful) rebuttal: the client is the disruptor.
    expelled_clients_.insert(accused);
    outcome.expelled_client = accused;
  }
  record_trace_time();
  return outcome;
}

std::optional<std::pair<size_t, size_t>> Coordinator::SlotSpanAtRound(uint64_t round,
                                                                      size_t slot) {
  // Replays the slot schedule from the oldest retained round. The schedule
  // is deterministic in the outputs, so this reproduces the layout exactly.
  if (history_.empty() || history_.find(round) == history_.end()) {
    return std::nullopt;
  }
  SlotSchedule replay(pseudonym_keys_.size(), def_.policy.default_slot_length);
  // We can only replay from a state we know: the oldest retained round must
  // be reachable from the initial all-closed schedule — that holds when
  // kEvidenceRounds covers the full session (tests) or the caller accuses a
  // recent round (production). Walk forward from round 1 if retained,
  // otherwise fall back to the current schedule's layout.
  if (history_.begin()->first != 1) {
    const SlotSchedule& cur = servers_[0]->schedule();
    if (slot >= cur.num_slots() || !cur.is_open(slot)) {
      return std::nullopt;
    }
    return std::make_pair(cur.SlotOffset(slot) * 8,
                          static_cast<size_t>(cur.slot_length(slot)) * 8);
  }
  for (auto& [r, rec] : history_) {
    if (r == round) {
      if (slot >= replay.num_slots() || !replay.is_open(slot)) {
        return std::nullopt;
      }
      return std::make_pair(replay.SlotOffset(slot) * 8,
                            static_cast<size_t>(replay.slot_length(slot)) * 8);
    }
    replay.Advance(rec.cleartext);
  }
  return std::nullopt;
}

void Coordinator::InjectDisruptor(size_t disruptor, size_t bit) {
  disruptor_ = DisruptorHook{disruptor, bit};
}

void Coordinator::InjectEquivocatingServer(size_t server_index) {
  equivocator_ = server_index;
}

void Coordinator::InjectTraceLiar(size_t server_index, size_t about_client) {
  trace_liar_ = TraceLiarHook{server_index, about_client};
}

}  // namespace dissent
