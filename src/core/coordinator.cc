#include "src/core/coordinator.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "src/core/dcnet.h"
#include "src/core/output_cert.h"

namespace dissent {

namespace {
// Fixed serialized size budget for accusation-shuffle messages; all clients
// submit the same width so accusers are indistinguishable from non-accusers.
constexpr size_t kAccusationBytes = 160;
}  // namespace

Coordinator::Coordinator(GroupDef def, std::vector<BigInt> server_privs,
                         std::vector<BigInt> client_privs, uint64_t seed)
    : def_(std::move(def)), rng_(SecureRng::FromLabel(seed)) {
  assert(server_privs.size() == def_.num_servers());
  assert(client_privs.size() == def_.num_clients());
  for (size_t i = 0; i < client_privs.size(); ++i) {
    clients_.push_back(
        std::make_unique<DissentClient>(def_, i, client_privs[i], rng_.Fork()));
  }
  for (size_t j = 0; j < server_privs.size(); ++j) {
    servers_.push_back(
        std::make_unique<DissentServer>(def_, j, server_privs[j], rng_.Fork()));
  }
  server_privs_ = std::move(server_privs);
  online_.assign(clients_.size(), true);
  last_seen_round_.assign(clients_.size(), 0);
}

bool Coordinator::RunScheduling() {
  // Clients submit encrypted pseudonym keys.
  CiphertextMatrix submissions;
  submissions.reserve(clients_.size());
  for (auto& c : clients_) {
    submissions.push_back(EncryptPseudonymKey(def_, c->pseudonym().pub, rng_));
  }
  // Servers run the mix cascade; everyone verifies it.
  ShuffleCascadeResult cascade = RunShuffleCascade(def_, server_privs_, submissions, rng_);
  if (!VerifyShuffleCascade(def_, submissions, cascade)) {
    return false;
  }
  // The final b components are the pseudonym keys, in shuffled order.
  pseudonym_keys_.clear();
  for (const auto& row : cascade.final_rows) {
    pseudonym_keys_.push_back(row[0].b);
  }
  // Each client locates its own key; that index is its slot (known only to
  // the client in a real deployment; the coordinator stores the mapping for
  // test assertions but never feeds it back into protocol logic).
  slot_of_client_.assign(clients_.size(), 0);
  for (size_t i = 0; i < clients_.size(); ++i) {
    auto it = std::find(pseudonym_keys_.begin(), pseudonym_keys_.end(),
                        clients_[i]->pseudonym().pub);
    if (it == pseudonym_keys_.end()) {
      return false;
    }
    size_t slot = static_cast<size_t>(it - pseudonym_keys_.begin());
    slot_of_client_[i] = slot;
    clients_[i]->AssignSlot(slot, pseudonym_keys_.size());
  }
  for (auto& s : servers_) {
    s->BeginSlots(pseudonym_keys_.size());
  }
  return true;
}

void Coordinator::SetClientOnline(size_t i, bool online) {
  if (online && !online_[i]) {
    // On reconnect the client fetches the signed outputs it missed and
    // replays them so its slot schedule stays in lockstep (§3.6: servers
    // never stall for it; catching up is the client's job).
    for (const auto& [r, rec] : history_) {
      if (r > last_seen_round_[i]) {
        clients_[i]->CatchUp(r, rec.cleartext);
        last_seen_round_[i] = r;
      }
    }
  }
  online_[i] = online;
}

Coordinator::RoundOutcome Coordinator::RunRound() {
  RoundOutcome outcome;
  const uint64_t round = next_round_++;
  outcome.round = round;

  for (auto& s : servers_) {
    s->StartRound(round);
  }

  // Step 1: online, non-expelled clients build and submit ciphertexts to
  // their upstream server (client i -> server i mod M).
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!online_[i] || expelled_clients_.count(i) != 0) {
      continue;
    }
    Bytes ct = clients_[i]->BuildCiphertext(round);
    if (disruptor_.has_value() && disruptor_->client == i &&
        disruptor_->bit < ct.size() * 8) {
      SetBit(ct, disruptor_->bit, !GetBit(ct, disruptor_->bit));
    }
    size_t j = i % servers_.size();
    bool ok = servers_[j]->AcceptClientCiphertext(round, i, std::move(ct));
    assert(ok);
  }

  // Step 2: inventories; step 3 prologue: trim + composite list.
  std::vector<std::vector<uint32_t>> inventories;
  inventories.reserve(servers_.size());
  for (auto& s : servers_) {
    inventories.push_back(s->Inventory());
  }
  auto trimmed = DissentServer::TrimInventories(inventories);
  std::vector<uint32_t> composite;
  for (const auto& share : trimmed) {
    composite.insert(composite.end(), share.begin(), share.end());
  }
  std::sort(composite.begin(), composite.end());
  outcome.participation = composite.size();

  // §3.7: participation threshold alpha * p_{r-1}.
  if (last_participation_ > 0 &&
      static_cast<double>(composite.size()) <
          def_.policy.alpha * static_cast<double>(last_participation_)) {
    outcome.below_alpha = true;
    // The synchronous driver reports and proceeds; the networked driver
    // keeps the window open instead (see net_protocol.cc).
  }
  last_participation_ = composite.size();

  // Step 3: server ciphertexts + commitments.
  std::vector<Bytes> server_cts(servers_.size());
  std::vector<Bytes> commits(servers_.size());
  for (size_t j = 0; j < servers_.size(); ++j) {
    server_cts[j] = servers_[j]->BuildServerCiphertext(composite, trimmed[j]);
    commits[j] = servers_[j]->CommitHash();
  }
  // Equivocation hook: the server alters its ciphertext *after* committing.
  if (equivocator_.has_value()) {
    Bytes& ct = server_cts[*equivocator_];
    if (!ct.empty()) {
      ct[0] ^= 1;
    }
  }

  // Steps 4-5: combine, verifying commitments.
  std::optional<Bytes> cleartext;
  for (size_t j = 0; j < servers_.size(); ++j) {
    auto combined = servers_[j]->CombineAndVerify(server_cts, commits);
    if (!combined.has_value()) {
      outcome.equivocating_server = servers_[j]->detected_equivocator();
      return outcome;  // round aborted; cheater identified
    }
    if (j == 0) {
      cleartext = combined;
    }
  }

  // Step 5: certification.
  std::vector<SchnorrSignature> sigs;
  sigs.reserve(servers_.size());
  for (auto& s : servers_) {
    sigs.push_back(s->SignRoundOutput(round, *cleartext));
  }
  if (!VerifyOutputCertificate(def_, round, *cleartext, sigs)) {
    return outcome;
  }

  // Step 6: output distribution.
  bool first_online_client = true;
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!online_[i] || expelled_clients_.count(i) != 0) {
      continue;
    }
    auto result = clients_[i]->ProcessOutput(round, *cleartext, sigs);
    assert(result.signatures_ok);
    last_seen_round_[i] = round;
    if (first_online_client) {
      outcome.messages = result.messages;
      first_online_client = false;
    }
  }
  for (auto& s : servers_) {
    auto fin = s->FinishRound(round, *cleartext);
    outcome.accusation_requested |= fin.accusation_requested;
  }

  // History for accusation tracing: record each slot's span this round.
  RoundRecord rec;
  rec.cleartext = *cleartext;
  history_[round] = std::move(rec);
  if (history_.size() > DissentServer::kEvidenceRounds) {
    history_.erase(history_.begin());
  }

  outcome.completed = true;
  outcome.cleartext = history_[round].cleartext;
  return outcome;
}

Coordinator::AccusationOutcome Coordinator::RunAccusationPhase() {
  AccusationOutcome outcome;
  const auto shuffle_start = std::chrono::steady_clock::now();
  const size_t width = MessageBlockWidth(def_, kAccusationBytes);

  // Accusation shuffle: every online client submits a fixed-width message;
  // only victims place real accusations inside (§3.9 — the shuffle hides who
  // is accusing).
  CiphertextMatrix submissions;
  std::vector<size_t> submitters;
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!online_[i] || expelled_clients_.count(i) != 0) {
      continue;
    }
    Bytes payload;
    auto acc = clients_[i]->TakeAccusation();
    if (acc.has_value()) {
      payload = acc->Serialize(*def_.group);
      payload.resize(kAccusationBytes, 0);
    } else {
      payload.assign(kAccusationBytes, 0);
    }
    auto row = EncryptMessageBlocks(def_, payload, width, rng_);
    assert(row.has_value());
    submissions.push_back(*row);
    submitters.push_back(i);
  }
  if (submissions.size() < 2) {
    return outcome;
  }
  ShuffleCascadeResult cascade = RunShuffleCascade(def_, server_privs_, submissions, rng_);
  if (!VerifyShuffleCascade(def_, submissions, cascade)) {
    return outcome;
  }
  outcome.shuffle_ran = true;
  outcome.shuffle_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - shuffle_start).count();
  const auto trace_start = std::chrono::steady_clock::now();
  auto record_trace_time = [&outcome, trace_start] {
    outcome.trace_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - trace_start).count();
  };

  // Recover the (at most one, in this driver) real accusation.
  std::optional<SignedAccusation> accusation;
  for (const auto& row : cascade.final_rows) {
    auto payload = DecodeMessageBlocks(def_, row);
    if (!payload.has_value()) {
      continue;
    }
    // Trim the zero padding back off.
    Bytes trimmed = *payload;
    while (!trimmed.empty() && trimmed.back() == 0) {
      trimmed.pop_back();
    }
    if (trimmed.empty()) {
      continue;  // null filler from a non-accusing client
    }
    auto acc = SignedAccusation::Deserialize(*def_.group, *payload);
    if (!acc.has_value()) {
      // Re-try without padding (serialization is self-delimiting up to the
      // zero fill; Deserialize demands AtEnd, so strip zeros first).
      Bytes exact = *payload;
      while (exact.size() > 0 && exact.back() == 0) {
        exact.pop_back();
      }
      acc = SignedAccusation::Deserialize(*def_.group, exact);
    }
    if (acc.has_value()) {
      accusation = acc;
      break;
    }
  }
  if (!accusation.has_value()) {
    record_trace_time();
    return outcome;
  }
  outcome.accusation_found = true;

  // Validate against the recorded round output.
  auto hist = history_.find(accusation->accusation.round);
  if (hist == history_.end()) {
    return outcome;
  }
  const DissentServer::RoundEvidence* ev =
      servers_[0]->EvidenceFor(accusation->accusation.round);
  if (ev == nullptr) {
    return outcome;
  }
  // Slot span at that round comes from the servers' schedule history; the
  // reference driver recomputes it from the retained cleartext by replaying
  // the schedule (cheap at test scale): here we use the span recorded at
  // round time via the current server schedule only if the layout hasn't
  // changed. For robustness we recompute from the history.
  auto span = SlotSpanAtRound(accusation->accusation.round, accusation->accusation.slot);
  if (!span.has_value()) {
    return outcome;
  }
  if (!ValidateAccusation(def_, pseudonym_keys_, *accusation, hist->second.cleartext,
                          span->first, span->second)) {
    return outcome;
  }
  outcome.accusation_valid = true;

  // Gather tracing inputs from every server's evidence.
  const uint64_t round = accusation->accusation.round;
  const size_t bit = accusation->accusation.bit_index;
  TraceInputs in;
  in.round = round;
  in.bit_index = bit;
  in.composite_list = ev->composite_list;
  in.own_shares.resize(servers_.size());
  in.server_ct_bits.resize(servers_.size());
  in.pad_bits.resize(servers_.size());
  for (size_t j = 0; j < servers_.size(); ++j) {
    const auto* evj = servers_[j]->EvidenceFor(round);
    if (evj == nullptr) {
      return outcome;
    }
    in.own_shares[j] = evj->own_share;
    in.server_ct_bits[j] = GetBit(evj->server_ct, bit);
    for (uint32_t i : evj->own_share) {
      in.client_ct_bits[i] = GetBit(evj->received_cts.at(i), bit);
    }
    for (uint32_t i : evj->composite_list) {
      bool b = servers_[j]->PadBit(round, i, bit);
      if (trace_liar_.has_value() && trace_liar_->server == j && trace_liar_->client == i) {
        b = !b;  // the lying server flips its disclosed pad bit
      }
      in.pad_bits[j][i] = b;
    }
  }
  outcome.verdict = TraceDisruptor(def_, in);

  if (outcome.verdict.kind == TraceVerdict::Kind::kServerExposed) {
    outcome.expelled_server = outcome.verdict.culprit;
    record_trace_time();
    return outcome;
  }
  if (outcome.verdict.kind == TraceVerdict::Kind::kClientAccused) {
    size_t accused = outcome.verdict.culprit;
    // Rebuttal (§3.9): the accused client checks each server's published pad
    // bit against its own and, if one differs, exposes that server.
    std::optional<size_t> blamed_server;
    for (size_t j = 0; j < servers_.size(); ++j) {
      bool client_view = DcnetPadBit(clients_[accused]->server_keys()[j], round, bit);
      if (client_view != in.pad_bits[j].at(static_cast<uint32_t>(accused))) {
        blamed_server = j;
        break;
      }
    }
    if (blamed_server.has_value()) {
      Rebuttal rebuttal = clients_[accused]->BuildRebuttal(*blamed_server);
      auto rv = EvaluateRebuttal(def_, rebuttal, round, bit,
                                 in.pad_bits[*blamed_server].at(
                                     static_cast<uint32_t>(accused)));
      if (rv.valid_proof && rv.server_lied) {
        outcome.expelled_server = *blamed_server;
        record_trace_time();
        return outcome;
      }
    }
    // No (successful) rebuttal: the client is the disruptor.
    expelled_clients_.insert(accused);
    outcome.expelled_client = accused;
  }
  record_trace_time();
  return outcome;
}

std::optional<std::pair<size_t, size_t>> Coordinator::SlotSpanAtRound(uint64_t round,
                                                                      size_t slot) {
  // Replays the slot schedule from the oldest retained round. The schedule
  // is deterministic in the outputs, so this reproduces the layout exactly.
  if (history_.empty() || history_.find(round) == history_.end()) {
    return std::nullopt;
  }
  SlotSchedule replay(pseudonym_keys_.size(), def_.policy.default_slot_length);
  // We can only replay from a state we know: the oldest retained round must
  // be reachable from the initial all-closed schedule — that holds when
  // kEvidenceRounds covers the full session (tests) or the caller accuses a
  // recent round (production). Walk forward from round 1 if retained,
  // otherwise fall back to the current schedule's layout.
  if (history_.begin()->first != 1) {
    const SlotSchedule& cur = servers_[0]->schedule();
    if (slot >= cur.num_slots() || !cur.is_open(slot)) {
      return std::nullopt;
    }
    return std::make_pair(cur.SlotOffset(slot) * 8,
                          static_cast<size_t>(cur.slot_length(slot)) * 8);
  }
  for (auto& [r, rec] : history_) {
    if (r == round) {
      if (slot >= replay.num_slots() || !replay.is_open(slot)) {
        return std::nullopt;
      }
      return std::make_pair(replay.SlotOffset(slot) * 8,
                            static_cast<size_t>(replay.slot_length(slot)) * 8);
    }
    replay.Advance(rec.cleartext);
  }
  return std::nullopt;
}

void Coordinator::InjectDisruptor(size_t disruptor, size_t bit) {
  disruptor_ = DisruptorHook{disruptor, bit};
}

void Coordinator::InjectEquivocatingServer(size_t server_index) {
  equivocator_ = server_index;
}

void Coordinator::InjectTraceLiar(size_t server_index, size_t about_client) {
  trace_liar_ = TraceLiarHook{server_index, about_client};
}

}  // namespace dissent
