// Round-output certification (Algorithm 2 steps 5-6): every server signs the
// combined cleartext; clients accept an output only with all M signatures.
#ifndef DISSENT_CORE_OUTPUT_CERT_H_
#define DISSENT_CORE_OUTPUT_CERT_H_

#include <vector>

#include "src/core/group_def.h"
#include "src/crypto/schnorr.h"

namespace dissent {

// Canonical bytes each server signs: group id, round number, cleartext hash.
Bytes OutputSigningBytes(const GroupDef& def, uint64_t round, const Bytes& cleartext);

SchnorrSignature SignOutput(const GroupDef& def, uint64_t round, const Bytes& cleartext,
                            const BigInt& server_priv, SecureRng& rng);

// True iff sigs has one valid signature per server, in roster order.
bool VerifyOutputCertificate(const GroupDef& def, uint64_t round, const Bytes& cleartext,
                             const std::vector<SchnorrSignature>& sigs);

}  // namespace dissent

#endif  // DISSENT_CORE_OUTPUT_CERT_H_
