// Typed wire API for the Dissent round protocol (§3.5, Algorithm 2).
//
// `WireMessage` is the canonical tagged variant of every message the
// deployment shape exchanges: clients speak ClientSubmit to one upstream
// server; servers gossip Inventory -> Commit -> ServerCiphertext ->
// SignatureShare among themselves and distribute Output down to their
// attached clients; the blame sub-phase (§3.9) adds the full accusation
// flow — BlameStart, AccusationSubmit (the fixed-width blame-shuffle
// input), BlameRoster, BlameMix (one verified shuffle layer), TraceEvidence
// (pad-bit disclosure), BlameChallenge, BlameRebuttal, and BlameVerdict
// (the outcome every client receives).
//
// Serialize/Parse are canonical (exactly one valid encoding per value) and
// defensive: Parse rejects truncation, trailing bytes, unknown tags, and
// hostile length/count fields *before* allocating, so a malicious peer can
// neither crash a node nor smuggle bytes under a valid signature. All
// cryptographic payloads (commitments, Schnorr signatures) travel as opaque
// byte strings; this layer knows nothing about groups, clocks, or sockets —
// it is shared verbatim by the in-process transport (coordinator.h), the
// simulated network transport (net_protocol.h), and any future real-socket
// transport.
#ifndef DISSENT_CORE_WIRE_H_
#define DISSENT_CORE_WIRE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "src/util/bytes.h"

namespace dissent {
namespace wire {

// --- round protocol (Algorithm 2) ---

// Client i's DC-net ciphertext for `round`, sent to its upstream server.
struct ClientSubmit {
  uint64_t round = 0;
  uint32_t client_id = 0;
  Bytes ciphertext;
};

// Server -> all other servers: the clients heard from directly this round
// (Algorithm 2 step 2). `clients` must be strictly increasing — inventories
// are sorted sets, and enforcing that here keeps the encoding canonical.
struct Inventory {
  uint64_t round = 0;
  uint32_t server_id = 0;
  std::vector<uint32_t> clients;
};

// Server -> all other servers: HASH(s_j) commitment to its ciphertext
// (Algorithm 2 step 3).
struct Commit {
  uint64_t round = 0;
  uint32_t server_id = 0;
  Bytes commitment;
};

// Server -> all other servers: the ciphertext s_j itself (step 4), revealed
// only after every commitment is in.
struct ServerCiphertext {
  uint64_t round = 0;
  uint32_t server_id = 0;
  Bytes ciphertext;
};

// Server -> all other servers: Schnorr signature share over the combined
// cleartext (step 5). Serialized signature; opaque at this layer.
struct SignatureShare {
  uint64_t round = 0;
  uint32_t server_id = 0;
  Bytes signature;
};

// Server -> its attached clients: the certified round output — cleartext
// plus one signature per server in roster order (step 6).
struct Output {
  uint64_t round = 0;
  Bytes cleartext;
  std::vector<Bytes> signatures;
};

// --- blame phase (§3.9) ---
//
// The blame sub-phase is one protocol instance per flagged round, identified
// by `session` (the round number whose certified output carried the nonzero
// shuffle-request field). Message flow, driven entirely by the engines:
//
//   server -> attached clients   BlameStart          open the blame shuffle
//   client -> upstream server    AccusationSubmit    fixed-width blame row
//   server -> servers            BlameRoster         collected rows, gossiped
//   server -> servers            BlameMix            one verified mix step
//   server -> servers            TraceEvidence       §3.9 pad-bit disclosure
//   server -> accused client     BlameChallenge      published pad bits
//   client -> upstream server    BlameRebuttal       DLEQ reveal (or concede)
//   server -> servers            BlameRebuttal       forwarded verbatim
//   server -> attached clients   BlameVerdict        outcome + expulsion

// Server -> its attached clients: the blame shuffle for `session` is open;
// every online client answers with exactly one AccusationSubmit.
struct BlameStart {
  uint64_t session = 0;
};

// A client's fixed-width submission to the blame shuffle. Every online
// client submits one (victims embed a real SignedAccusation, everyone else
// an all-zero filler of the same width), so accusers are indistinguishable.
// `blame_ciphertext` is a serialized ElGamal row (key_shuffle.h codec) of
// exactly MessageBlockWidth(kAccusationBytes) elements, signed under the
// client's long-term key over (session, client_id, row) — so when rosters
// are gossiped, no server can forge or substitute a row for a client that
// is not attached to it (e.g. to shadow a victim's accusation out of the
// shuffle).
struct AccusationSubmit {
  uint64_t session = 0;
  uint32_t client_id = 0;
  Bytes blame_ciphertext;
  Bytes signature;
};

// One collected blame row, exactly as the client signed it.
struct BlameRosterEntry {
  uint32_t client_id = 0;
  Bytes row;
  Bytes signature;
};

// Server -> all other servers: the blame rows this server collected from its
// attached clients. `entries` must be strictly increasing by client id —
// rosters are sorted sets, which keeps the encoding canonical and makes the
// merged shuffle input matrix identical on every server (entries whose
// client signature does not verify are dropped identically everywhere).
struct BlameRoster {
  uint64_t session = 0;
  uint32_t server_id = 0;
  std::vector<BlameRosterEntry> entries;
};

// Server -> all other servers: this server's verified mix contribution, in
// cascade order. `step` is a serialized MixStep (key_shuffle.h codec).
struct BlameMix {
  uint64_t session = 0;
  uint32_t server_id = 0;
  Bytes step;
};

// Server -> all other servers: the §3.9 trace disclosure for the accused
// (round, bit): which clients this server owned after trimming, their
// ciphertext bits, its own published ciphertext bit, and the pad bits
// s_ij[k] for every client in the composite list (bitmap in composite-list
// order). `present` false means the server's evidence for that round has
// expired (SetEvidenceRounds) — the trace ends inconclusive.
struct TraceEvidence {
  uint64_t session = 0;
  uint32_t server_id = 0;
  uint64_t round = 0;
  uint64_t bit_index = 0;
  bool present = false;
  std::vector<uint32_t> own_share;  // strictly increasing client ids
  Bytes client_ct_bits;             // bitmap, one bit per own_share entry
  uint8_t server_ct_bit = 0;        // 0/1
  Bytes pad_bits;                   // bitmap over the composite list
};

// Upstream server -> the accused client: the pad bits the servers published
// for you at (round, bit_index); rebut by exposing the liar, or concede.
struct BlameChallenge {
  uint64_t session = 0;
  uint64_t round = 0;
  uint64_t bit_index = 0;
  uint32_t client_id = 0;
  Bytes pad_bits;  // bitmap, one bit per server
};

// Accused client -> upstream server (then gossiped among servers verbatim):
// a serialized Rebuttal (accusation_types.h), or empty to concede. Signed
// under the client's long-term key over (session, client_id, rebuttal), so
// a malicious server cannot forge a concession that convicts an honest
// client whose genuine rebuttal would have exposed it.
struct BlameRebuttal {
  uint64_t session = 0;
  uint32_t client_id = 0;
  Bytes rebuttal;
  Bytes signature;
};

// Broadcast outcome of accusation tracing: who (if anyone) was exposed.
struct BlameVerdict {
  enum Kind : uint8_t { kInconclusive = 0, kClientExpelled = 1, kServerExposed = 2 };
  uint64_t session = 0;  // blame instance this verdict closes
  uint64_t round = 0;    // the disrupted round that was traced
  uint8_t kind = kInconclusive;
  uint32_t culprit = 0;  // client index or server index, per `kind`
};

// --- reliability & recovery (hostile-network layer) ---
//
// The frames below exist so the engines can run over transports that lose,
// duplicate, reorder, or corrupt frames and whose nodes crash mid-session.
// They carry no DC-net semantics: Ack/Reliable implement per-directed-link
// sequencing, CatchUpRequest/RoundSummary resynchronize a client that
// missed an Output broadcast, VerdictShare closes the blame-verdict
// agreement race, and RoundAbort votes a wedged round dead.

// Cumulative acknowledgement for a Reliable-wrapped frame. `seq` is the
// highest sequence number below which every frame from the acked peer has
// been received; `sack` bitmap (bit k => seq + 1 + k received) lets the
// sender clear out-of-order arrivals without waiting for the cumulative
// frontier. `from_id`/`to_id` are sender/addressee indices (client or
// server per the link direction) — transport routing aids for nodes that
// multiplex many clients; a real per-connection transport would carry the
// same facts in the connection itself, and the engines never trust them
// beyond what the transport has already authenticated.
struct Ack {
  uint64_t seq = 0;
  uint32_t from_id = 0;
  uint32_t to_id = 0;
  Bytes sack;  // canonical bitmap, may be empty
};

// Reliability envelope: `inner` is one serialized WireMessage (never an Ack
// or another Reliable), `seq` its per-directed-link sequence number. The
// receiver acks every arrival, delivers each seq exactly once, and the
// sender retransmits unacked frames with capped exponential backoff.
// `from_id`/`to_id` as in Ack; any identity claim inside `inner` is still
// verified by the engine against the authenticated sender.
struct Reliable {
  uint64_t seq = 0;
  uint32_t from_id = 0;
  uint32_t to_id = 0;
  Bytes inner;
};

// Client -> upstream server: "I last processed round `have_round`; send me
// everything newer you still remember." Sent on a resync timer when an
// Output broadcast went missing.
struct CatchUpRequest {
  uint64_t have_round = 0;
  uint32_t client_id = 0;
};

// Server -> one lagging client: the certified outcome of a single round the
// client missed — either the full signed output (signatures in roster
// order, verifiable exactly like Output) or an abort marker. `final_round`
// tells the client how far the server has certified so it can tell when it
// has caught up.
struct RoundSummary {
  uint64_t round = 0;
  bool aborted = false;
  Bytes cleartext;               // empty when aborted
  std::vector<Bytes> signatures; // empty when aborted
  uint64_t final_round = 0;      // newest round the server has certified
};

// Server -> all other servers: this server's signed share of a blame
// verdict. No engine acts on an expulsion until it holds a verified share
// from *every* server over the identical (session, round, kind, culprit)
// context — a unilateral or equivocated verdict converts to kInconclusive
// instead of an expulsion.
struct VerdictShare {
  uint64_t session = 0;
  uint32_t server_id = 0;
  uint64_t round = 0;
  uint8_t kind = 0;      // wire::BlameVerdict::Kind
  uint32_t culprit = 0;
  Bytes signature;       // Schnorr over the canonical verdict context
};

// Server -> all other servers: vote to abort `round` (its window has been
// open past the abort deadline with a peer server silent). A round aborts
// only when every *reachable* server has voted, and an aborted round
// advances the slot schedule with an all-zero cleartext on every node.
// Legacy one-shot vote: retained (and byte-identical) when the two-phase
// abort agreement below is disabled.
struct RoundAbort {
  uint64_t round = 0;
  uint32_t server_id = 0;
};

// --- epoch-committed abort agreement & server catch-up ---
//
// The two-phase replacement for RoundAbort voting. `epoch` is the number of
// aborts the voter has already applied, which binds every vote to one abort
// history: prepares from servers whose histories diverge can never be
// combined into a certificate. Prepares are signed, commits are
// certificates carrying every collected prepare signature, and both are
// idempotently re-deliverable — a healing partition converges by replaying
// certificates (and, for deeper lag, ServerCatchUpBatch) instead of
// splitting the fleet's decision.

// Server -> all other servers: signed promise to abort `round` at abort
// epoch `epoch` unless a full output certificate resolves it first. Signed
// over the canonical (round, epoch, server_id) context; re-broadcast on
// every abort-deadline tick while the round stays unresolved.
struct AbortPrepare {
  uint64_t round = 0;
  uint64_t epoch = 0;
  uint32_t server_id = 0;
  Bytes signature;
};

// Server -> all other servers: the abort certificate for `round` at
// `epoch` — one verified AbortPrepare signature per voting server
// (`server_ids` strictly increasing, parallel to `signatures`, at least
// M-1 of M). Self-certifying: any server can apply it at its finish
// frontier without having voted itself, and re-delivering it is harmless.
struct AbortCommit {
  uint64_t round = 0;
  uint64_t epoch = 0;
  std::vector<uint32_t> server_ids;
  std::vector<Bytes> signatures;
};

// Server -> sibling servers: "my finish frontier is `have_round`; replay
// the schedule evolution after it." Sent by a server restored from a stale
// snapshot (and retried on a timer) until its layout frontier matches the
// fleet.
struct ServerCatchUpRequest {
  uint64_t have_round = 0;
  uint32_t server_id = 0;
};

// One replayed round in a ServerCatchUpBatch: either a completed round
// (cleartext + all M output signatures in roster order, `cert_ids` empty)
// or an aborted one (empty cleartext, the abort certificate's prepare
// signatures with `cert_ids` naming the signers, strictly increasing).
struct ServerCatchUpEntry {
  bool aborted = false;
  Bytes cleartext;                 // empty when aborted
  std::vector<uint32_t> cert_ids;  // empty when completed
  std::vector<Bytes> signatures;
};

// Sibling server -> a lagging server: the signed per-round schedule
// evolution for consecutive rounds first_round..first_round+entries-1.
// Every entry is verifiable against long-term server keys, so a lagging
// server advances its layout frontier on cryptographic evidence, never on a
// sibling's say-so. `final_round` advertises the sender's frontier so the
// receiver knows when it has rejoined.
struct ServerCatchUpBatch {
  uint32_t server_id = 0;
  uint64_t first_round = 0;
  uint64_t final_round = 0;
  std::vector<ServerCatchUpEntry> entries;
};

}  // namespace wire

using WireMessage =
    std::variant<wire::ClientSubmit, wire::Inventory, wire::Commit, wire::ServerCiphertext,
                 wire::SignatureShare, wire::Output, wire::BlameStart, wire::AccusationSubmit,
                 wire::BlameRoster, wire::BlameMix, wire::TraceEvidence, wire::BlameChallenge,
                 wire::BlameRebuttal, wire::BlameVerdict, wire::Ack, wire::Reliable,
                 wire::CatchUpRequest, wire::RoundSummary, wire::VerdictShare, wire::RoundAbort,
                 wire::AbortPrepare, wire::AbortCommit, wire::ServerCatchUpRequest,
                 wire::ServerCatchUpBatch>;

// Canonical encoding: [u8 tag][fixed fields][length-prefixed byte strings].
Bytes SerializeWire(const WireMessage& msg);

// Strict parse: returns nullopt on truncation, trailing bytes, unknown tag,
// non-canonical field values, or count fields larger than the remaining
// input could possibly hold (the hostile-count guard).
std::optional<WireMessage> ParseWire(const Bytes& data);

// Ref-counted variants for broadcast fan-out: one serialized frame (or one
// parsed message) is shared by every destination instead of copied/parsed
// per destination. ParseWireShared returns nullptr on rejection.
std::shared_ptr<const Bytes> SerializeWireShared(const WireMessage& msg);
std::shared_ptr<const WireMessage> ParseWireShared(const Bytes& data);

// Human-readable tag name, for logs and test diagnostics.
const char* WireTypeName(const WireMessage& msg);

// Canonical bitmap rule shared by the codec and the engines: a bitmap over
// `bits` entries must be exactly ceil(bits/8) bytes with no stray bits set
// beyond the last entry, so every value has one encoding.
bool BitmapCanonical(const Bytes& bitmap, size_t bits);

// True for the §3.9 blame sub-phase messages (BlameStart..BlameVerdict plus
// the VerdictShare agreement frame) — index compares, cheap enough for
// per-delivery hot paths. The variant layout this relies on is pinned by
// static_asserts in wire.cc.
inline bool IsBlamePhaseMessage(const WireMessage& msg) {
  return (msg.index() >= 6 && msg.index() <= 13) ||
         std::holds_alternative<wire::VerdictShare>(msg);
}

}  // namespace dissent

#endif  // DISSENT_CORE_WIRE_H_
