// Typed wire API for the Dissent round protocol (§3.5, Algorithm 2).
//
// `WireMessage` is the canonical tagged variant of every message the
// deployment shape exchanges: clients speak ClientSubmit to one upstream
// server; servers gossip Inventory -> Commit -> ServerCiphertext ->
// SignatureShare among themselves and distribute Output down to their
// attached clients; the accusation phase (§3.9) adds AccusationSubmit (the
// fixed-width blame-shuffle input) and BlameVerdict (the trace outcome).
//
// Serialize/Parse are canonical (exactly one valid encoding per value) and
// defensive: Parse rejects truncation, trailing bytes, unknown tags, and
// hostile length/count fields *before* allocating, so a malicious peer can
// neither crash a node nor smuggle bytes under a valid signature. All
// cryptographic payloads (commitments, Schnorr signatures) travel as opaque
// byte strings; this layer knows nothing about groups, clocks, or sockets —
// it is shared verbatim by the in-process transport (coordinator.h), the
// simulated network transport (net_protocol.h), and any future real-socket
// transport.
#ifndef DISSENT_CORE_WIRE_H_
#define DISSENT_CORE_WIRE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "src/util/bytes.h"

namespace dissent {
namespace wire {

// --- round protocol (Algorithm 2) ---

// Client i's DC-net ciphertext for `round`, sent to its upstream server.
struct ClientSubmit {
  uint64_t round = 0;
  uint32_t client_id = 0;
  Bytes ciphertext;
};

// Server -> all other servers: the clients heard from directly this round
// (Algorithm 2 step 2). `clients` must be strictly increasing — inventories
// are sorted sets, and enforcing that here keeps the encoding canonical.
struct Inventory {
  uint64_t round = 0;
  uint32_t server_id = 0;
  std::vector<uint32_t> clients;
};

// Server -> all other servers: HASH(s_j) commitment to its ciphertext
// (Algorithm 2 step 3).
struct Commit {
  uint64_t round = 0;
  uint32_t server_id = 0;
  Bytes commitment;
};

// Server -> all other servers: the ciphertext s_j itself (step 4), revealed
// only after every commitment is in.
struct ServerCiphertext {
  uint64_t round = 0;
  uint32_t server_id = 0;
  Bytes ciphertext;
};

// Server -> all other servers: Schnorr signature share over the combined
// cleartext (step 5). Serialized signature; opaque at this layer.
struct SignatureShare {
  uint64_t round = 0;
  uint32_t server_id = 0;
  Bytes signature;
};

// Server -> its attached clients: the certified round output — cleartext
// plus one signature per server in roster order (step 6).
struct Output {
  uint64_t round = 0;
  Bytes cleartext;
  std::vector<Bytes> signatures;
};

// --- accusation phase (§3.9) ---

// A client's fixed-width submission to the blame shuffle. Every online
// client submits one (victims embed a real SignedAccusation, everyone else
// an all-zero filler of the same width), so accusers are indistinguishable.
struct AccusationSubmit {
  uint32_t client_id = 0;
  Bytes blame_ciphertext;
};

// Broadcast outcome of accusation tracing: who (if anyone) was exposed.
struct BlameVerdict {
  enum Kind : uint8_t { kInconclusive = 0, kClientExpelled = 1, kServerExposed = 2 };
  uint64_t round = 0;    // the disrupted round that was traced
  uint8_t kind = kInconclusive;
  uint32_t culprit = 0;  // client index or server index, per `kind`
};

}  // namespace wire

using WireMessage =
    std::variant<wire::ClientSubmit, wire::Inventory, wire::Commit, wire::ServerCiphertext,
                 wire::SignatureShare, wire::Output, wire::AccusationSubmit,
                 wire::BlameVerdict>;

// Canonical encoding: [u8 tag][fixed fields][length-prefixed byte strings].
Bytes SerializeWire(const WireMessage& msg);

// Strict parse: returns nullopt on truncation, trailing bytes, unknown tag,
// non-canonical field values, or count fields larger than the remaining
// input could possibly hold (the hostile-count guard).
std::optional<WireMessage> ParseWire(const Bytes& data);

// Ref-counted variants for broadcast fan-out: one serialized frame (or one
// parsed message) is shared by every destination instead of copied/parsed
// per destination. ParseWireShared returns nullptr on rejection.
std::shared_ptr<const Bytes> SerializeWireShared(const WireMessage& msg);
std::shared_ptr<const WireMessage> ParseWireShared(const Bytes& data);

// Human-readable tag name, for logs and test diagnostics.
const char* WireTypeName(const WireMessage& msg);

}  // namespace dissent

#endif  // DISSENT_CORE_WIRE_H_
