#include "src/core/output_cert.h"

#include "src/crypto/sha256.h"
#include "src/util/serialize.h"

namespace dissent {

Bytes OutputSigningBytes(const GroupDef& def, uint64_t round, const Bytes& cleartext) {
  Writer w;
  w.Str("dissent.round_output.v1");
  w.Blob(def.Id());
  w.U64(round);
  w.Blob(Sha256::Hash(cleartext));
  return w.Take();
}

SchnorrSignature SignOutput(const GroupDef& def, uint64_t round, const Bytes& cleartext,
                            const BigInt& server_priv, SecureRng& rng) {
  return SchnorrSign(*def.group, server_priv, OutputSigningBytes(def, round, cleartext), rng);
}

bool VerifyOutputCertificate(const GroupDef& def, uint64_t round, const Bytes& cleartext,
                             const std::vector<SchnorrSignature>& sigs) {
  if (sigs.size() != def.num_servers()) {
    return false;
  }
  // One Schnorr multi-verify over all M shares instead of M sequential
  // verifies — the per-round client cost the 5,000-client sim was dominated
  // by. Same message, roster order; accepts iff every share verifies.
  return SchnorrMultiVerify(*def.group, def.server_pubs,
                            OutputSigningBytes(def, round, cleartext), sigs);
}

}  // namespace dissent
