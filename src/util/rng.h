// Deterministic pseudo-random number generation for the *simulation* plane.
//
// Simulation randomness (latency draws, churn, workload arrivals) must be
// reproducible and cheap; it never needs to be cryptographic. Protocol-plane
// randomness (keys, nonces, shuffle factors) instead uses crypto/random.h.
#ifndef DISSENT_UTIL_RNG_H_
#define DISSENT_UTIL_RNG_H_

#include <cstdint>

namespace dissent {

// splitmix64-seeded xoshiro256** — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();
  // Uniform in [0, bound).
  uint64_t Below(uint64_t bound);
  // Uniform in [0, 1).
  double NextDouble();
  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);
  // Standard normal via Box-Muller.
  double Normal();
  // Lognormal with the given log-space mean/stddev.
  double LogNormal(double mu, double sigma);
  // Exponential with the given mean (= 1/rate).
  double Exponential(double mean);
  // Pareto with scale x_m > 0 and shape alpha > 0.
  double Pareto(double x_m, double alpha);
  bool Bernoulli(double p);

  // Derive an independent child stream (for per-node generators).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dissent

#endif  // DISSENT_UTIL_RNG_H_
