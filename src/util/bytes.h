// Byte-buffer helpers shared across the project.
//
// `Bytes` is the universal octet-string type for keys, ciphertexts, DC-net
// pads, and wire messages. Helpers here are deliberately small and allocation
// conscious: the DC-net data plane XORs multi-megabyte buffers per round.
#ifndef DISSENT_UTIL_BYTES_H_
#define DISSENT_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dissent {

using Bytes = std::vector<uint8_t>;

// In-place XOR of raw buffers: dst[i] ^= src[i] for i in [0, n). Word-wise
// (uint64 chunks + byte tail); the workhorse of every keystream/ciphertext
// combine in the DC-net data plane.
void XorWords(uint8_t* dst, const uint8_t* src, size_t n);

// In-place XOR: dst[i] ^= src[i]. Requires dst.size() == src.size().
void XorInto(Bytes& dst, const Bytes& src);

// XOR of two equal-length buffers.
Bytes XorBytes(const Bytes& a, const Bytes& b);

// Lowercase hex encoding/decoding. DecodeHex aborts on malformed input
// (internal use only; never fed attacker-controlled strings).
std::string ToHex(const Bytes& b);
Bytes FromHex(const std::string& hex);

// Constant-time equality for secret material.
bool ConstantTimeEq(const Bytes& a, const Bytes& b);

// Bytes from a string literal / std::string payload.
Bytes BytesOf(const std::string& s);
std::string StringOf(const Bytes& b);

// Bit accessors used by the DC-net tracing logic (§3.9): bit `i` is bit
// (7 - i % 8) of byte i / 8, i.e. most-significant-bit-first, matching the
// slot layout documented in core/slot_schedule.h.
bool GetBit(const Bytes& b, size_t bit_index);
void SetBit(Bytes& b, size_t bit_index, bool value);

}  // namespace dissent

#endif  // DISSENT_UTIL_BYTES_H_
