// PadExpander-style fork/join parallelism for the public-key proof stack.
//
// The shuffle cascade's unit of work is an independent row (re-encryption,
// DLEQ proof, ILMPP commitment) or an independent mix step; like the DC-net
// pad plane (core/dcnet.cc), workers are plain std::threads spawned per call
// with the first chunk running on the calling thread. Results must be
// deterministic: callers draw all randomness serially up front, workers only
// perform pure modular arithmetic, so the output is bit-identical for any
// thread count (including 1).
//
// Nested calls run inline on the calling thread — a ParallelFor inside a
// worker never over-subscribes (e.g. a MultiExp partition inside a
// parallel-across-steps cascade verification).
#ifndef DISSENT_UTIL_PARALLEL_H_
#define DISSENT_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace dissent {

// Worker budget for crypto hot paths: hardware_concurrency capped at 8
// (matching DissentServer's pad-aggregation cap), and 1 when the crypto
// fast path is disabled so the reference/pre-PR benchmark columns stay
// faithfully serial.
size_t DefaultCryptoThreads();

// Invokes fn(begin, end) over a partition of [0, n) across up to
// num_threads workers (contiguous chunks, one per worker). fn must be safe
// to call concurrently on disjoint ranges. num_threads <= 1, n <= 1, or a
// nested call degenerate to a single inline fn(0, n).
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace dissent

#endif  // DISSENT_UTIL_PARALLEL_H_
