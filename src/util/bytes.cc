#include "src/util/bytes.h"

#include <cassert>
#include <cstdlib>

namespace dissent {

void XorInto(Bytes& dst, const Bytes& src) {
  assert(dst.size() == src.size());
  uint8_t* d = dst.data();
  const uint8_t* s = src.data();
  size_t n = dst.size();
  size_t i = 0;
  // Word-at-a-time main loop; the tail handles the final < 8 bytes.
  for (; i + 8 <= n; i += 8) {
    uint64_t a, b;
    __builtin_memcpy(&a, d + i, 8);
    __builtin_memcpy(&b, s + i, 8);
    a ^= b;
    __builtin_memcpy(d + i, &a, 8);
  }
  for (; i < n; ++i) {
    d[i] ^= s[i];
  }
}

Bytes XorBytes(const Bytes& a, const Bytes& b) {
  Bytes out = a;
  XorInto(out, b);
  return out;
}

std::string ToHex(const Bytes& b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t c : b) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

namespace {
int HexVal(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  std::abort();
}
}  // namespace

Bytes FromHex(const std::string& hex) {
  assert(hex.size() % 2 == 0);
  Bytes out(hex.size() / 2);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(HexVal(hex[2 * i]) << 4 | HexVal(hex[2 * i + 1]));
  }
  return out;
}

bool ConstantTimeEq(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

Bytes BytesOf(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string StringOf(const Bytes& b) { return std::string(b.begin(), b.end()); }

bool GetBit(const Bytes& b, size_t bit_index) {
  assert(bit_index / 8 < b.size());
  return (b[bit_index / 8] >> (7 - bit_index % 8)) & 1;
}

void SetBit(Bytes& b, size_t bit_index, bool value) {
  assert(bit_index / 8 < b.size());
  uint8_t mask = static_cast<uint8_t>(1u << (7 - bit_index % 8));
  if (value) {
    b[bit_index / 8] |= mask;
  } else {
    b[bit_index / 8] &= static_cast<uint8_t>(~mask);
  }
}

}  // namespace dissent
