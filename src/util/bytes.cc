#include "src/util/bytes.h"

#include <cassert>
#include <cstdlib>

namespace dissent {

void XorWords(uint8_t* d, const uint8_t* s, size_t n) {
  size_t i = 0;
  // Four words per iteration so the compiler can keep the loads/stores wide;
  // then a word loop, then the final < 8 bytes.
  for (; i + 32 <= n; i += 32) {
    uint64_t a[4], b[4];
    __builtin_memcpy(a, d + i, 32);
    __builtin_memcpy(b, s + i, 32);
    a[0] ^= b[0];
    a[1] ^= b[1];
    a[2] ^= b[2];
    a[3] ^= b[3];
    __builtin_memcpy(d + i, a, 32);
  }
  for (; i + 8 <= n; i += 8) {
    uint64_t a, b;
    __builtin_memcpy(&a, d + i, 8);
    __builtin_memcpy(&b, s + i, 8);
    a ^= b;
    __builtin_memcpy(d + i, &a, 8);
  }
  for (; i < n; ++i) {
    d[i] ^= s[i];
  }
}

void XorInto(Bytes& dst, const Bytes& src) {
  assert(dst.size() == src.size());
  XorWords(dst.data(), src.data(), dst.size());
}

Bytes XorBytes(const Bytes& a, const Bytes& b) {
  Bytes out = a;
  XorInto(out, b);
  return out;
}

std::string ToHex(const Bytes& b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t c : b) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

namespace {
int HexVal(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  std::abort();
}
}  // namespace

Bytes FromHex(const std::string& hex) {
  assert(hex.size() % 2 == 0);
  Bytes out(hex.size() / 2);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(HexVal(hex[2 * i]) << 4 | HexVal(hex[2 * i + 1]));
  }
  return out;
}

bool ConstantTimeEq(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

Bytes BytesOf(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string StringOf(const Bytes& b) { return std::string(b.begin(), b.end()); }

bool GetBit(const Bytes& b, size_t bit_index) {
  assert(bit_index / 8 < b.size());
  return (b[bit_index / 8] >> (7 - bit_index % 8)) & 1;
}

void SetBit(Bytes& b, size_t bit_index, bool value) {
  assert(bit_index / 8 < b.size());
  uint8_t mask = static_cast<uint8_t>(1u << (7 - bit_index % 8));
  if (value) {
    b[bit_index / 8] |= mask;
  } else {
    b[bit_index / 8] &= static_cast<uint8_t>(~mask);
  }
}

}  // namespace dissent
