#include "src/util/serialize.h"

#include <cstring>

namespace dissent {

namespace {
template <typename T>
void PutLE(Bytes& buf, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}
}  // namespace

void Writer::U8(uint8_t v) { buf_.push_back(v); }
void Writer::U16(uint16_t v) { PutLE(buf_, v); }
void Writer::U32(uint32_t v) { PutLE(buf_, v); }
void Writer::U64(uint64_t v) { PutLE(buf_, v); }
void Writer::Bool(bool v) { buf_.push_back(v ? 1 : 0); }

void Writer::Blob(const Bytes& b) {
  U32(static_cast<uint32_t>(b.size()));
  Raw(b);
}

void Writer::Raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

void Writer::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool Reader::Take(size_t n, const uint8_t** p) {
  if (buf_.size() - pos_ < n) {
    return false;
  }
  *p = buf_.data() + pos_;
  pos_ += n;
  return true;
}

namespace {
template <typename T>
T GetLE(const uint8_t* p) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(p[i]) << (8 * i);
  }
  return v;
}
}  // namespace

bool Reader::U8(uint8_t* v) {
  const uint8_t* p;
  if (!Take(1, &p)) {
    return false;
  }
  *v = *p;
  return true;
}

bool Reader::U16(uint16_t* v) {
  const uint8_t* p;
  if (!Take(2, &p)) {
    return false;
  }
  *v = GetLE<uint16_t>(p);
  return true;
}

bool Reader::U32(uint32_t* v) {
  const uint8_t* p;
  if (!Take(4, &p)) {
    return false;
  }
  *v = GetLE<uint32_t>(p);
  return true;
}

bool Reader::U64(uint64_t* v) {
  const uint8_t* p;
  if (!Take(8, &p)) {
    return false;
  }
  *v = GetLE<uint64_t>(p);
  return true;
}

bool Reader::Bool(bool* v) {
  uint8_t b;
  if (!U8(&b) || b > 1) {
    return false;
  }
  *v = (b == 1);
  return true;
}

bool Reader::Blob(Bytes* b) {
  uint32_t n;
  if (!U32(&n)) {
    return false;
  }
  return Raw(n, b);
}

bool Reader::Raw(size_t n, Bytes* b) {
  const uint8_t* p;
  if (!Take(n, &p)) {
    return false;
  }
  b->assign(p, p + n);
  return true;
}

bool Reader::Str(std::string* s) {
  uint32_t n;
  if (!U32(&n)) {
    return false;
  }
  const uint8_t* p;
  if (!Take(n, &p)) {
    return false;
  }
  s->assign(reinterpret_cast<const char*>(p), n);
  return true;
}

}  // namespace dissent
