#include "src/util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "src/crypto/multiexp.h"

namespace dissent {

namespace {
thread_local bool t_in_parallel_region = false;
}  // namespace

size_t DefaultCryptoThreads() {
  if (!CryptoFastPathEnabled()) {
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(std::min<size_t>(hw, 8), 1);
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const size_t workers = std::min(std::max<size_t>(num_threads, 1), n);
  if (workers <= 1 || t_in_parallel_region) {
    fn(0, n);
    return;
  }
  const size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    const size_t begin = w * chunk;
    if (begin >= n) {
      break;
    }
    const size_t end = std::min(n, begin + chunk);
    threads.emplace_back([&fn, begin, end] {
      t_in_parallel_region = true;
      fn(begin, end);
      t_in_parallel_region = false;
    });
  }
  // First chunk on the calling thread instead of it idling in join.
  t_in_parallel_region = true;
  fn(0, std::min(n, chunk));
  t_in_parallel_region = false;
  for (auto& t : threads) {
    t.join();
  }
}

}  // namespace dissent
