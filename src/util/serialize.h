// Canonical binary (de)serialization for protocol messages.
//
// All multi-byte integers are little-endian and fixed-width; variable-length
// byte strings are length-prefixed with a u32. The encoding must be canonical
// (one valid encoding per value) because signatures and the self-certifying
// group id are computed over these bytes.
//
// Reader is defensive: all accessors return false on truncation/overflow so
// protocol code can reject malformed messages from dishonest nodes instead of
// crashing.
#ifndef DISSENT_UTIL_SERIALIZE_H_
#define DISSENT_UTIL_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "src/util/bytes.h"

namespace dissent {

class Writer {
 public:
  void U8(uint8_t v);
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Bool(bool v);
  // Length-prefixed byte string.
  void Blob(const Bytes& b);
  // Raw bytes, no length prefix (caller knows the framing).
  void Raw(const Bytes& b);
  void Str(const std::string& s);

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(const Bytes& buf) : buf_(buf) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool Bool(bool* v);
  bool Blob(Bytes* b);
  bool Raw(size_t n, Bytes* b);
  bool Str(std::string* s);

  // True when every byte has been consumed; protocol decoders require this
  // so trailing garbage cannot be smuggled under a valid signature.
  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  bool Take(size_t n, const uint8_t** p);

  const Bytes& buf_;
  size_t pos_ = 0;
};

}  // namespace dissent

#endif  // DISSENT_UTIL_SERIALIZE_H_
