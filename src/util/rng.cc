#include "src/util/rng.h"

#include <cmath>

namespace dissent {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  if (bound <= 1) {
    return 0;
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = (~0ull / bound) * bound;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % bound;
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(mu + sigma * Normal()); }

double Rng::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Pareto(double x_m, double alpha) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace dissent
