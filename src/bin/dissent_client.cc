// dissent-client: one client-host process for the real-socket deployment.
//
// Hosts --clients-per-host ClientEngines multiplexed over a single TCP
// connection to their upstream server (host h -> server h mod M, the
// machine-major NetDissent shape), queues the deterministic deployment
// payloads, and exits 0 once every hosted client has processed --rounds
// round outputs. Reconnects with backoff forever — a server restart mid-run
// is survived, with the catch-up path replaying what the dead incarnation
// dropped.
//
// --sim-reference: instead of running sockets, compute the deployment's
// sim-transport reference cleartexts (deployment.h) and print them as
// "<round> <hex>" lines on stdout. The harness diffs every socket log
// against this fixture — byte identity is the acceptance bar.
#include <signal.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/bin/deploy_flags.h"
#include "src/net/socket_transport.h"

namespace dissent {
namespace net {
namespace {

int SimReference(const DeployConfig& cfg) {
  const std::vector<Bytes> cleartexts = RunSimReference(cfg);
  if (cleartexts.size() < cfg.rounds) {
    std::fprintf(stderr, "sim reference incomplete: %zu/%zu rounds\n", cleartexts.size(),
                 cfg.rounds);
    return 1;
  }
  for (size_t k = 0; k < cleartexts.size(); ++k) {
    std::printf("%zu %s\n", k + 1, ToHex(cleartexts[k]).c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  DeployConfig cfg;
  size_t host_index = SIZE_MAX;
  bool sim_reference = false;
  int64_t timeout_sec = 300;
  std::string log_path;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argc, argv, &i, "--host-index", &v)) {
      host_index = std::strtoul(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--sim-reference") == 0) {
      sim_reference = true;
    } else if (FlagValue(argc, argv, &i, "--timeout-sec", &v)) {
      timeout_sec = std::strtol(v.c_str(), nullptr, 10);
    } else if (FlagValue(argc, argv, &i, "--log", &v)) {
      log_path = v;
    } else if (ParseDeployFlag(argc, argv, &i, &cfg)) {
      // consumed
    } else {
      std::fprintf(stderr, "dissent-client: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (sim_reference) {
    return SimReference(cfg);
  }
  if (host_index >= cfg.num_hosts()) {
    std::fprintf(stderr, "dissent-client: --host-index required (< num hosts)\n");
    return 2;
  }
  signal(SIGPIPE, SIG_IGN);

  EventLoop loop;
  ClientHostNode node(&loop, cfg, host_index);
  for (size_t local = 0; local < node.num_clients(); ++local) {
    const size_t i = node.first_client() + local;
    for (size_t k = 0; k < cfg.rounds; ++k) {
      node.client_logic(local).QueueMessage(DeployPayload(i, k));
    }
  }

  FILE* log = nullptr;
  if (!log_path.empty()) {
    log = std::fopen(log_path.c_str(), "ae");
    if (log == nullptr) {
      std::fprintf(stderr, "dissent-client %zu: cannot open log %s\n", host_index,
                   log_path.c_str());
      return 1;
    }
  }
  if (log != nullptr) {
    // One hosted client's view is enough for the log: all hosted engines
    // verify the same certified outputs.
    node.on_delivery = [&](size_t client, const ClientEngine::Delivery& d) {
      if (client == node.first_client() && d.signatures_ok && d.round <= cfg.rounds) {
        std::fprintf(log, "%" PRIu64 " %s\n", d.round, ToHex(d.cleartext).c_str());
        std::fflush(log);
      }
    };
  }

  node.Start();
  const bool done = loop.RunUntil(
      [&] { return node.min_delivered_round() >= cfg.rounds; }, timeout_sec * 1000000ll);
  if (log != nullptr) {
    std::fclose(log);
  }
  if (!done) {
    std::fprintf(stderr, "dissent-client %zu: timed out at round %" PRIu64 "/%zu\n",
                 host_index, node.min_delivered_round(), cfg.rounds);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace net
}  // namespace dissent

int main(int argc, char** argv) { return dissent::net::Main(argc, argv); }
