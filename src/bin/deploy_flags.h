// Minimal flag parsing shared by dissentd and dissent-client: every
// deployment-shape flag maps 1:1 onto a DeployConfig field, so all processes
// launched with the same shape flags derive the same group and rng streams.
#ifndef DISSENT_BIN_DEPLOY_FLAGS_H_
#define DISSENT_BIN_DEPLOY_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/net/deployment.h"

namespace dissent {
namespace net {

// "--name=value" or "--name value". Returns true and advances *i on match.
inline bool FlagValue(int argc, char** argv, int* i, const char* name,
                      std::string* out) {
  const char* arg = argv[*i];
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) {
    return false;
  }
  if (arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  if (arg[n] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

// Parses the shared deployment-shape flags into `cfg`; returns false (and
// prints to stderr) on an unknown or malformed flag that is also not
// consumed by the caller (tracked via `consumed`).
inline bool ParseDeployFlag(int argc, char** argv, int* i, DeployConfig* cfg) {
  std::string v;
  if (FlagValue(argc, argv, i, "--seed", &v)) {
    cfg->seed = std::strtoull(v.c_str(), nullptr, 10);
  } else if (FlagValue(argc, argv, i, "--servers", &v)) {
    cfg->num_servers = std::strtoul(v.c_str(), nullptr, 10);
  } else if (FlagValue(argc, argv, i, "--clients", &v)) {
    cfg->num_clients = std::strtoul(v.c_str(), nullptr, 10);
  } else if (FlagValue(argc, argv, i, "--clients-per-host", &v)) {
    cfg->clients_per_host = std::strtoul(v.c_str(), nullptr, 10);
  } else if (FlagValue(argc, argv, i, "--depth", &v)) {
    cfg->pipeline_depth = std::strtoul(v.c_str(), nullptr, 10);
  } else if (FlagValue(argc, argv, i, "--rounds", &v)) {
    cfg->rounds = std::strtoul(v.c_str(), nullptr, 10);
  } else if (FlagValue(argc, argv, i, "--host", &v)) {
    cfg->host = v;
  } else if (FlagValue(argc, argv, i, "--base-port", &v)) {
    cfg->base_port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
  } else if (FlagValue(argc, argv, i, "--verify-cascade", &v)) {
    cfg->verify_cascade = v != "0";
  } else if (FlagValue(argc, argv, i, "--abort-deadline-ms", &v)) {
    cfg->abort_deadline_us = std::strtoll(v.c_str(), nullptr, 10) * 1000;
  } else if (FlagValue(argc, argv, i, "--abort-agreement", &v)) {
    cfg->abort_agreement = v != "0";
  } else if (FlagValue(argc, argv, i, "--chaos-base-port", &v)) {
    cfg->chaos_base_port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
  } else {
    return false;
  }
  return true;
}

// Hex encoding for the cleartext logs ("<round> <hex>\n" per line).
inline std::string ToHex(const Bytes& b) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t c : b) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

}  // namespace net
}  // namespace dissent

#endif  // DISSENT_BIN_DEPLOY_FLAGS_H_
