// chaos-proxy: deterministic fault-injecting TCP relay for localrun chaos
// mode.
//
// Launched with the same deployment-shape flags as dissentd plus a fault
// plan; every dissent process is pointed at --chaos-base-port and the proxy
// forwards each link to the real server ports, injecting seeded
// drop/stall/close faults and connection-severing partition windows
// (scripts/localrun.sh --chaos <seed>). SIGTERM prints the injected-fault
// tally to stderr and exits 0.
#include <signal.h>
#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/bin/deploy_flags.h"
#include "src/net/chaos_proxy.h"

namespace dissent {
namespace net {
namespace {

// "a_lo-a_hi:b_lo-b_hi:from_ms:until_ms", e.g. "2-2:0-1:8000:16000".
bool ParsePartition(const std::string& v, ChaosPlan::Partition* out) {
  unsigned long a_lo, a_hi, b_lo, b_hi, from_ms, until_ms;
  if (std::sscanf(v.c_str(), "%lu-%lu:%lu-%lu:%lu:%lu", &a_lo, &a_hi, &b_lo, &b_hi,
                  &from_ms, &until_ms) != 6) {
    return false;
  }
  out->a_lo = a_lo;
  out->a_hi = a_hi;
  out->b_lo = b_lo;
  out->b_hi = b_hi;
  out->from_us = static_cast<int64_t>(from_ms) * 1000;
  out->until_us = static_cast<int64_t>(until_ms) * 1000;
  return true;
}

int Main(int argc, char** argv) {
  DeployConfig cfg;
  ChaosPlan plan;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argc, argv, &i, "--drop", &v)) {
      plan.drop = std::strtod(v.c_str(), nullptr);
    } else if (FlagValue(argc, argv, &i, "--stall", &v)) {
      plan.stall = std::strtod(v.c_str(), nullptr);
    } else if (FlagValue(argc, argv, &i, "--stall-ms", &v)) {
      plan.stall_us = std::strtoll(v.c_str(), nullptr, 10) * 1000;
    } else if (FlagValue(argc, argv, &i, "--close", &v)) {
      plan.close = std::strtod(v.c_str(), nullptr);
    } else if (FlagValue(argc, argv, &i, "--grace-ms", &v)) {
      plan.grace_us = std::strtoll(v.c_str(), nullptr, 10) * 1000;
    } else if (std::string(argv[i]) == "--trace") {
      plan.trace = true;
    } else if (FlagValue(argc, argv, &i, "--partition", &v)) {
      ChaosPlan::Partition p;
      if (!ParsePartition(v, &p)) {
        std::fprintf(stderr, "chaos-proxy: bad --partition %s\n", v.c_str());
        return 2;
      }
      plan.partitions.push_back(p);
    } else if (ParseDeployFlag(argc, argv, &i, &cfg)) {
      // consumed
    } else {
      std::fprintf(stderr, "chaos-proxy: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (cfg.chaos_base_port == 0) {
    std::fprintf(stderr, "chaos-proxy: --chaos-base-port required\n");
    return 2;
  }
  plan.seed = cfg.seed;

  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  sigprocmask(SIG_BLOCK, &mask, nullptr);
  signal(SIGPIPE, SIG_IGN);
  const int sfd = signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);

  EventLoop loop;
  ChaosProxy proxy(&loop, cfg, plan);
  if (!proxy.Listen()) {
    return 1;
  }
  if (sfd >= 0) {
    loop.AddFd(sfd, EPOLLIN, [&](uint32_t) {
      signalfd_siginfo si;
      while (read(sfd, &si, sizeof(si)) == sizeof(si)) {
      }
      loop.Stop();
    });
  }
  proxy.Start();
  std::fprintf(stderr, "chaos-proxy: relaying %zu servers (base %u -> chaos %u)\n",
               cfg.num_servers, cfg.base_port, cfg.chaos_base_port);
  loop.Run();
  std::fprintf(stderr,
               "chaos-proxy: forwarded=%" PRIu64 " dropped=%" PRIu64 " stalls=%" PRIu64
               " closes=%" PRIu64 " severed=%" PRIu64 " refused=%" PRIu64 "\n",
               proxy.frames_forwarded(), proxy.frames_dropped(), proxy.stalls_injected(),
               proxy.closes_injected(), proxy.pairs_severed(), proxy.dials_refused());
  return 0;
}

}  // namespace
}  // namespace net
}  // namespace dissent

int main(int argc, char** argv) { return dissent::net::Main(argc, argv); }
