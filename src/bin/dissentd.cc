// dissentd: one Dissent server over real TCP sockets.
//
// Listens on base_port + index for sibling and client-host connections, runs
// the distributed key shuffle, then drives a ServerEngine until killed.
//
// Crash discipline: SIGTERM/SIGINT snapshot the full session (pseudonym keys
// + engine state, PR 6) to --snapshot via tmp+rename, then exit 0. On
// startup, an existing non-empty snapshot file short-circuits the scheduling
// phase and resumes the session — kill -TERM + relaunch with identical flags
// is the supported restart path, and the ReliableMailbox heals the frames
// the dead incarnation lost.
//
// Observability: --log appends "<round> <hex-cleartext>" per finished round
// (the harness's byte-identity input); --stats rewrites a small JSON blob
// (rounds, elapsed seconds, wall-clock rounds/sec) when the round target is
// reached and again on shutdown.
#include <fcntl.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/bin/deploy_flags.h"
#include "src/net/socket_transport.h"

namespace dissent {
namespace net {
namespace {

Bytes ReadFileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return {};
  }
  Bytes out;
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

bool WriteFileAtomic(const std::string& path, const Bytes& data) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool ok = data.empty() || std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok && std::rename(tmp.c_str(), path.c_str()) == 0;
}

void WriteStats(const std::string& path, const ServerNode& node, size_t index) {
  if (path.empty()) {
    return;
  }
  const double secs = node.elapsed_seconds();
  const double rps = secs > 0 ? static_cast<double>(node.rounds_completed()) / secs : 0.0;
  // Retransmit overhead: reliable wraps re-sent per first-time wrap. 1.0
  // means no frame ever needed a second send.
  const double overhead =
      node.reliable_sent() > 0
          ? 1.0 + static_cast<double>(node.retransmits()) /
                      static_cast<double>(node.reliable_sent())
          : 1.0;
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\"index\": %zu, \"rounds\": %" PRIu64
                ", \"seconds\": %.3f, \"wallclock_rounds_per_sec\": %.3f, "
                "\"restored\": %s, \"retransmits\": %" PRIu64
                ", \"pipelined_submissions\": %" PRIu64 ", \"halted\": %s, "
                "\"reliable_sent\": %" PRIu64 ", \"duplicates_dropped\": %" PRIu64
                ", \"max_in_flight\": %" PRIu64 ", \"retransmit_overhead\": %.4f, "
                "\"aborts_agreed\": %" PRIu64 ", \"catch_up_rounds\": %" PRIu64 "}\n",
                index, node.rounds_completed(), secs, rps,
                node.restored() ? "true" : "false", node.retransmits(),
                node.pipelined_submissions(), node.halted() ? "true" : "false",
                node.reliable_sent(), node.duplicates_dropped(), node.max_in_flight(),
                overhead, node.rounds_aborted(), node.catch_up_rounds());
  Bytes b(buf, buf + std::strlen(buf));
  WriteFileAtomic(path, b);
}

int Main(int argc, char** argv) {
  DeployConfig cfg;
  size_t index = SIZE_MAX;
  std::string snapshot_path, log_path, stats_path;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argc, argv, &i, "--index", &v)) {
      index = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argc, argv, &i, "--snapshot", &v)) {
      snapshot_path = v;
    } else if (FlagValue(argc, argv, &i, "--log", &v)) {
      log_path = v;
    } else if (FlagValue(argc, argv, &i, "--stats", &v)) {
      stats_path = v;
    } else if (ParseDeployFlag(argc, argv, &i, &cfg)) {
      // consumed
    } else {
      std::fprintf(stderr, "dissentd: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (index >= cfg.num_servers) {
    std::fprintf(stderr, "dissentd: --index required (< --servers)\n");
    return 2;
  }

  // Block SIGTERM/SIGINT and take them over a signalfd on the loop, so the
  // snapshot is written from loop context with no async-signal gymnastics.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  sigprocmask(SIG_BLOCK, &mask, nullptr);
  signal(SIGPIPE, SIG_IGN);
  const int sfd = signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);

  EventLoop loop;
  ServerNode node(&loop, cfg, index);
  if (!node.Listen()) {
    std::fprintf(stderr, "dissentd %zu: bind %s:%u failed\n", index, cfg.host.c_str(),
                 cfg.server_port(index));
    return 1;
  }

  if (!snapshot_path.empty()) {
    Bytes snap = ReadFileBytes(snapshot_path);
    if (!snap.empty()) {
      if (!node.RestoreFromSnapshot(snap)) {
        std::fprintf(stderr, "dissentd %zu: snapshot restore failed\n", index);
        return 1;
      }
      std::fprintf(stderr, "dissentd %zu: restored from snapshot\n", index);
    }
  }

  FILE* log = nullptr;
  if (!log_path.empty()) {
    log = std::fopen(log_path.c_str(), "ae");
    if (log == nullptr) {
      std::fprintf(stderr, "dissentd %zu: cannot open log %s\n", index, log_path.c_str());
      return 1;
    }
  }
  node.on_round = [&](const ServerEngine::RoundDone& done) {
    // Rounds past the target carry empty client queues (auto-submit keeps
    // the pipeline running); the comparison fixture stops at the target.
    if (log != nullptr && done.completed && done.round <= cfg.rounds) {
      std::fprintf(log, "%" PRIu64 " %s\n", done.round, ToHex(done.cleartext).c_str());
      std::fflush(log);
    }
  };
  node.on_target_rounds = [&] { WriteStats(stats_path, node, index); };

  if (sfd >= 0) {
    loop.AddFd(sfd, EPOLLIN, [&](uint32_t) {
      signalfd_siginfo si;
      while (read(sfd, &si, sizeof(si)) == sizeof(si)) {
      }
      loop.Stop();
    });
  }

  node.Start();
  loop.Run();

  if (!snapshot_path.empty()) {
    const Bytes snap = node.SnapshotBytes();
    if (!snap.empty() && !WriteFileAtomic(snapshot_path, snap)) {
      std::fprintf(stderr, "dissentd %zu: snapshot write failed\n", index);
      return 1;
    }
  }
  WriteStats(stats_path, node, index);
  if (log != nullptr) {
    std::fclose(log);
  }
  return 0;
}

}  // namespace
}  // namespace net
}  // namespace dissent

int main(int argc, char** argv) { return dissent::net::Main(argc, argv); }
