// Deterministic fault-injecting TCP proxy for the real-socket transport.
//
// The sim transport's FaultPlan proves the engines survive a hostile network
// in virtual time; this proxy brings the same fault matrix to real sockets
// so scripts/localrun.sh can assert byte-identity under loss, stalls,
// partitions, and forced reconnects against actual kernel TCP. Every dissent
// process is pointed at the proxy via DeployConfig::chaos_base_port: each
// (dialer, server) link gets its own proxy listen port (sibling link i->j on
// chaos_base_port + i*M + j, client hosts of server j on
// chaos_base_port + M*M + j), and the proxy relays frames to the target's
// real listen port (base_port + j).
//
// Fault model, drawn from one splitmix64 stream per link direction in frame
// order — the same plan against the same frame sequence reproduces the
// identical fault trace:
//   * drop: an engine frame is not forwarded. Only reliability-wrapped
//     engine traffic is droppable; handshake and scheduling frames
//     (IsNetFrame) have no retransmission layer, so dropping one would model
//     a fault TCP cannot produce (in-connection loss) rather than the
//     cross-connection loss the mailbox owns.
//   * stall: the link direction buffers everything for stall_us, then
//     flushes in order — a latency spike, never a reorder (TCP cannot
//     reorder within a connection).
//   * close: the proxied pair is torn down mid-run; both endpoints see a
//     clean close and redial through the proxy with jittered backoff.
//   * partition: for [from, until) windows, pairs on server links crossing
//     the two groups are closed and new dials are refused — connection-level
//     severance, exactly what a real partition does to established TCP.
// Faults start only after grace_us (scheduling and the first rounds run
// clean, mirroring the sim plans, which also fault mid-session).
#ifndef DISSENT_NET_CHAOS_PROXY_H_
#define DISSENT_NET_CHAOS_PROXY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/net/deployment.h"
#include "src/net/event_loop.h"
#include "src/net/socket_transport.h"

namespace dissent {
namespace net {

struct ChaosPlan {
  uint64_t seed = 0;
  // Per-frame probabilities after the grace period.
  double drop = 0.0;   // droppable engine frames only
  double stall = 0.0;  // hold the direction for stall_us, order preserved
  double close = 0.0;  // tear the proxied pair down
  int64_t stall_us = 50 * 1000;
  int64_t grace_us = 0;
  // Log every relayed/faulted frame to stderr (link, direction, size).
  bool trace = false;
  // Server links between groups [a_lo, a_hi] and [b_lo, b_hi] are severed
  // while from_us <= t < until_us (t measured from ChaosProxy::Start).
  struct Partition {
    size_t a_lo = 0, a_hi = 0;
    size_t b_lo = 0, b_hi = 0;
    int64_t from_us = 0;
    int64_t until_us = 0;
  };
  std::vector<Partition> partitions;

  bool Active() const {
    return drop > 0 || stall > 0 || close > 0 || !partitions.empty();
  }
};

class ChaosProxy {
 public:
  // cfg.chaos_base_port must be nonzero; targets listen on cfg.base_port + j.
  ChaosProxy(EventLoop* loop, DeployConfig cfg, ChaosPlan plan);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  // Binds every link port (M*M sibling ports + M client ports). False on any
  // bind failure.
  bool Listen();
  // Arms the partition window timers; t=0 for the fault clock.
  void Start();

  uint64_t frames_forwarded() const { return frames_forwarded_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t stalls_injected() const { return stalls_injected_; }
  uint64_t closes_injected() const { return closes_injected_; }
  uint64_t pairs_severed() const { return pairs_severed_; }
  uint64_t dials_refused() const { return dials_refused_; }

 private:
  // One proxied link: every connection accepted on this port relays to the
  // same target server.
  struct Link {
    size_t dialer = 0;  // server index, or num_servers + host block for clients
    size_t target = 0;  // target server index
    bool server_link = false;
    int listen_fd = -1;
    // One fault stream per direction (frame order), so the trace does not
    // depend on how the two directions interleave.
    uint64_t rng_fwd = 0;
    uint64_t rng_rev = 0;
  };
  // An accepted connection and its onward leg to the real server.
  struct Pair {
    Link* link = nullptr;
    std::unique_ptr<Connection> inbound;
    std::unique_ptr<Connection> outbound;
    // Stall queues: while flush_at_us is set, frames accumulate and flush in
    // order when the timer fires.
    std::deque<Bytes> held_fwd, held_rev;
    bool stalled_fwd = false, stalled_rev = false;
  };

  void AcceptOn(Link* link);
  void AdoptPair(Link* link, int fd);
  void ClosePair(Pair* pair);
  void Relay(Pair* pair, bool forward, Bytes payload);
  void FlushHeld(Pair* pair, bool forward);
  bool PartitionActive(const Link& link, int64_t t_us) const;
  int64_t FaultClockUs() const;

  EventLoop* loop_;
  DeployConfig cfg_;
  ChaosPlan plan_;
  int64_t start_us_ = 0;
  std::vector<std::unique_ptr<Link>> links_;
  std::map<Pair*, std::unique_ptr<Pair>> pairs_;
  std::vector<std::unique_ptr<Pair>> graveyard_;
  bool cleanup_scheduled_ = false;
  std::shared_ptr<bool> alive_guard_ = std::make_shared<bool>(true);

  uint64_t frames_forwarded_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t stalls_injected_ = 0;
  uint64_t closes_injected_ = 0;
  uint64_t pairs_severed_ = 0;
  uint64_t dials_refused_ = 0;
};

}  // namespace net
}  // namespace dissent

#endif  // DISSENT_NET_CHAOS_PROXY_H_
