// Length-prefixed framing for the real-socket transport.
//
// Every frame on a dissent TCP link is a u32 little-endian payload length
// followed by that many payload bytes. The payload is either a typed
// protocol message (wire.h, tag byte < 0x80) or a transport-control message
// (net_wire.h, tag byte >= 0x80); the framing layer does not care which.
//
// FrameDecoder is incremental: TCP delivers an arbitrary byte stream, so
// the decoder accepts any split — a length prefix arriving one byte at a
// time, a frame spanning many reads, many frames in one read — and yields
// complete payloads in order. It is hostile-input hardened: a length prefix
// above `max_frame` poisons the decoder permanently (the peer is speaking a
// different protocol or attacking allocation; the connection must be
// dropped) *before* any allocation of the claimed size happens.
#ifndef DISSENT_NET_FRAMING_H_
#define DISSENT_NET_FRAMING_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/util/bytes.h"

namespace dissent {
namespace net {

inline constexpr size_t kFrameHeaderBytes = 4;
// Largest payload a peer may send. The biggest honest frame is a blame-mix
// step at paper scale (a few MiB); 64 MiB leaves headroom without letting a
// hostile prefix allocate unbounded memory.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

// Appends the framed encoding of `payload` (header + bytes) to `out`.
void AppendFrame(const Bytes& payload, Bytes* out);
Bytes EncodeFrame(const Bytes& payload);

class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame = kDefaultMaxFrameBytes)
      : max_frame_(max_frame) {}

  // Feeds raw stream bytes. Returns false (and enters the error state) when
  // a length prefix exceeds max_frame; no bytes are consumed after that.
  bool Feed(const uint8_t* data, size_t len);
  bool Feed(const Bytes& data) { return Feed(data.data(), data.size()); }

  // Next complete payload, oldest first; nullopt when none is buffered.
  std::optional<Bytes> Next();

  bool error() const { return error_; }
  // Bytes held that do not yet form a complete frame — nonzero after a
  // mid-frame connection close means the peer died with a frame in flight.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_;
  Bytes buf_;        // unconsumed stream bytes (compacted between feeds)
  size_t pos_ = 0;   // consumed prefix of buf_
  bool error_ = false;
};

}  // namespace net
}  // namespace dissent

#endif  // DISSENT_NET_FRAMING_H_
