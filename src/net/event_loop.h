// Nonblocking epoll event loop for the real-socket transport.
//
// Single-threaded reactor: edge-triggered socket readiness via epoll, a
// min-heap of one-shot timers armed through a single timerfd, and a
// CLOCK_MONOTONIC microsecond clock the protocol engines consume directly
// (they only ever subtract timestamps). Everything the loop calls back into
// runs on the loop thread — the transport above needs no locks.
//
// Edge-triggered contract: a handler registered with EPOLLET must drain its
// fd (read/accept/write until EAGAIN) on every callback, or readiness is
// lost until the peer acts again. Connection (socket_transport.h) honors
// this.
//
// Deregistration safety: handlers are looked up per event against a
// generation stamp carried in the epoll payload, so a callback that closes
// some *other* fd in the same wake-up batch — even if the kernel reuses the
// fd number immediately — cannot cause a stale or misdirected dispatch.
#ifndef DISSENT_NET_EVENT_LOOP_H_
#define DISSENT_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

namespace dissent {
namespace net {

class EventLoop {
 public:
  using FdHandler = std::function<void(uint32_t events)>;
  using TimerFn = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Microseconds on CLOCK_MONOTONIC (comparable across processes on one
  // machine, which is all the localhost harness needs).
  int64_t NowUs() const;

  // Registers `fd` with the given epoll event mask (caller includes EPOLLET
  // for edge-triggered). The handler receives the ready event mask.
  void AddFd(int fd, uint32_t events, FdHandler handler);
  void ModFd(int fd, uint32_t events);
  // Unregisters; safe from inside any handler, including fd's own.
  void DelFd(int fd);

  // One-shot timer. Returns an id; CancelTimer is O(1) (tombstone).
  uint64_t ScheduleAfter(int64_t delay_us, TimerFn fn);
  void CancelTimer(uint64_t id);

  // Runs until Stop(). RunUntil pumps the loop until `done` returns true or
  // `timeout_us` elapses; returns done's final value (the in-process tests'
  // driver).
  void Run();
  bool RunUntil(const std::function<bool()>& done, int64_t timeout_us);
  void Stop() { stop_ = true; }

 private:
  struct FdEntry {
    uint64_t gen = 0;
    FdHandler handler;
  };
  struct Timer {
    int64_t due_us = 0;
    uint64_t id = 0;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.due_us != b.due_us ? a.due_us > b.due_us : a.id > b.id;
    }
  };

  // One epoll_wait + dispatch; waits at most max_wait_us (-1 = until the
  // next timer / forever).
  void PollOnce(int64_t max_wait_us);
  void ArmTimerFd();
  void FireDueTimers();

  int epfd_ = -1;
  int timerfd_ = -1;
  uint64_t next_gen_ = 1;
  std::map<int, FdEntry> fds_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::map<uint64_t, TimerFn> timer_fns_;  // erased = cancelled tombstone
  uint64_t next_timer_id_ = 1;
  bool stop_ = false;
};

}  // namespace net
}  // namespace dissent

#endif  // DISSENT_NET_EVENT_LOOP_H_
