#include "src/net/net_wire.h"

#include <cstring>

#include "src/crypto/sha256.h"
#include "src/util/serialize.h"

namespace dissent {
namespace net {

namespace {

enum class Tag : uint8_t {
  kHello = 0x80,
  kSchedSubmit = 0x81,
  kSchedRoster = 0x82,
  kSchedMix = 0x83,
  kSchedKeys = 0x84,
};

constexpr size_t kHmacBlock = 64;
constexpr size_t kMacBytes = 32;

Bytes HelloMacInput(uint8_t role, uint32_t first_id, uint32_t count, uint64_t nonce) {
  Writer w;
  w.Str("dissent-hello");
  w.U8(role);
  w.U32(first_id);
  w.U32(count);
  w.U64(nonce);
  return w.Take();
}

bool ConstantTimeEq(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  Bytes k = key.size() > kHmacBlock ? Sha256::Hash(key) : key;
  k.resize(kHmacBlock, 0);
  Bytes ipad(kHmacBlock), opad(kHmacBlock);
  for (size_t i = 0; i < kHmacBlock; ++i) {
    ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }
  Bytes inner = Sha256().Update(ipad).Update(message).Finish();
  return Sha256().Update(opad).Update(inner).Finish();
}

Bytes SessionSecret(uint64_t seed, const Bytes& group_id) {
  Writer w;
  w.Str("dissent-session-secret");
  w.U64(seed);
  w.Blob(group_id);
  return Sha256::Hash(w.data());
}

Hello MakeHello(const Bytes& secret, uint8_t role, uint32_t first_id, uint32_t count,
                uint64_t nonce) {
  Hello h;
  h.role = role;
  h.first_id = first_id;
  h.count = count;
  h.nonce = nonce;
  h.mac = HmacSha256(secret, HelloMacInput(role, first_id, count, nonce));
  return h;
}

bool VerifyHello(const Bytes& secret, const Hello& hello) {
  if (hello.role > Hello::kClientHost || hello.count == 0) {
    return false;
  }
  const Bytes expect =
      HmacSha256(secret, HelloMacInput(hello.role, hello.first_id, hello.count, hello.nonce));
  return ConstantTimeEq(expect, hello.mac);
}

Bytes SerializeNet(const NetMessage& msg) {
  Writer w;
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) {
          w.U8(static_cast<uint8_t>(Tag::kHello));
          w.U8(m.role);
          w.U32(m.first_id);
          w.U32(m.count);
          w.U64(m.nonce);
          w.Blob(m.mac);
        } else if constexpr (std::is_same_v<T, SchedSubmit>) {
          w.U8(static_cast<uint8_t>(Tag::kSchedSubmit));
          w.U32(m.client_id);
          w.Blob(m.row);
        } else if constexpr (std::is_same_v<T, SchedRoster>) {
          w.U8(static_cast<uint8_t>(Tag::kSchedRoster));
          w.U32(m.server_id);
          w.U32(static_cast<uint32_t>(m.entries.size()));
          for (const auto& e : m.entries) {
            w.U32(e.client_id);
            w.Blob(e.row);
          }
        } else if constexpr (std::is_same_v<T, SchedMix>) {
          w.U8(static_cast<uint8_t>(Tag::kSchedMix));
          w.U32(m.server_id);
          w.Blob(m.step);
        } else if constexpr (std::is_same_v<T, SchedKeys>) {
          w.U8(static_cast<uint8_t>(Tag::kSchedKeys));
          w.U32(static_cast<uint32_t>(m.keys.size()));
          for (const auto& k : m.keys) {
            w.Blob(k);
          }
        }
      },
      msg);
  return w.Take();
}

std::optional<NetMessage> ParseNet(const Bytes& data) {
  Reader r(data);
  uint8_t tag;
  if (!r.U8(&tag)) {
    return std::nullopt;
  }
  switch (static_cast<Tag>(tag)) {
    case Tag::kHello: {
      Hello m;
      if (!r.U8(&m.role) || !r.U32(&m.first_id) || !r.U32(&m.count) || !r.U64(&m.nonce) ||
          !r.Blob(&m.mac) || !r.AtEnd()) {
        return std::nullopt;
      }
      if (m.mac.size() != kMacBytes) {
        return std::nullopt;
      }
      return NetMessage{std::move(m)};
    }
    case Tag::kSchedSubmit: {
      SchedSubmit m;
      if (!r.U32(&m.client_id) || !r.Blob(&m.row) || !r.AtEnd()) {
        return std::nullopt;
      }
      return NetMessage{std::move(m)};
    }
    case Tag::kSchedRoster: {
      SchedRoster m;
      uint32_t count;
      if (!r.U32(&m.server_id) || !r.U32(&count)) {
        return std::nullopt;
      }
      // Each entry is at least 8 bytes (id + empty blob); bound the
      // allocation by what the input could actually hold.
      if (static_cast<uint64_t>(count) * 8 > r.remaining()) {
        return std::nullopt;
      }
      m.entries.reserve(count);
      uint32_t prev = 0;
      for (uint32_t i = 0; i < count; ++i) {
        SchedRosterEntry e;
        if (!r.U32(&e.client_id) || !r.Blob(&e.row)) {
          return std::nullopt;
        }
        if (i > 0 && e.client_id <= prev) {
          return std::nullopt;  // strict order keeps rosters canonical
        }
        prev = e.client_id;
        m.entries.push_back(std::move(e));
      }
      if (!r.AtEnd()) {
        return std::nullopt;
      }
      return NetMessage{std::move(m)};
    }
    case Tag::kSchedMix: {
      SchedMix m;
      if (!r.U32(&m.server_id) || !r.Blob(&m.step) || !r.AtEnd()) {
        return std::nullopt;
      }
      return NetMessage{std::move(m)};
    }
    case Tag::kSchedKeys: {
      SchedKeys m;
      uint32_t count;
      if (!r.U32(&count)) {
        return std::nullopt;
      }
      if (static_cast<uint64_t>(count) * 4 > r.remaining()) {
        return std::nullopt;
      }
      m.keys.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        Bytes k;
        if (!r.Blob(&k)) {
          return std::nullopt;
        }
        m.keys.push_back(std::move(k));
      }
      if (!r.AtEnd()) {
        return std::nullopt;
      }
      return NetMessage{std::move(m)};
    }
    default:
      return std::nullopt;
  }
}

}  // namespace net
}  // namespace dissent
