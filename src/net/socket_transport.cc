#include "src/net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/core/wire.h"
#include "src/util/serialize.h"

namespace dissent {
namespace net {

namespace {

constexpr uint32_t kSnapshotMagic = 0x504e5344;  // "DSNP"
constexpr uint8_t kSnapshotVersion = 1;
// Backpressure guard: a peer that never drains lets the write queue grow;
// past this the connection is torn down (the mailbox re-delivers protocol
// frames on the replacement).
constexpr size_t kMaxPendingWriteBytes = 1u << 30;

int SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Deterministic redial jitter: one splitmix64 stream per link, seeded from
// (deployment seed, dialer, peer). A whole fleet restarting after a fault
// would otherwise redial in lockstep (every backoff doubles from the same
// 200 ms), hammering the listener in synchronized bursts; a seeded stream
// spreads the retries while keeping any given run exactly reproducible.
uint64_t JitterSeed(uint64_t seed, uint64_t self, uint64_t peer) {
  return seed ^ (self * 0x9e3779b97f4a7c15ull) ^ (peer * 0xc2b2ae3d27d4eb4full);
}

// Advances the stream and returns a jitter in [0, delay/4].
int64_t NextBackoffJitter(uint64_t& state, int64_t delay) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<int64_t>(z % static_cast<uint64_t>(delay / 4 + 1));
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection

Connection::Connection(EventLoop* loop, int fd) : loop_(loop), fd_(fd) {
  SetNonBlocking(fd_);
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Register(EPOLLIN | EPOLLET);
}

Connection::Connection(EventLoop* loop, const std::string& host, uint16_t port)
    : loop_(loop) {
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  connecting_ = true;
  const int rc = connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    // Loopback can refuse synchronously (the peer is not listening yet).
    // Report asynchronously through on_close so the owner — which has not
    // set its handlers yet — sees the same path as an async failure.
    ::close(fd_);
    fd_ = -1;
    auto alive = alive_;
    loop_->ScheduleAfter(0, [this, alive] {
      if (*alive && on_close_) {
        on_close_(this);
      }
    });
    return;
  }
  if (rc == 0) {
    // Connected synchronously; deliver on_connect asynchronously so the
    // owner can set handlers first.
    auto alive = alive_;
    loop_->ScheduleAfter(0, [this, alive] {
      if (*alive && fd_ >= 0 && connecting_) {
        connecting_ = false;
        if (on_connect_) {
          on_connect_(this);
        }
        if (fd_ >= 0) {
          FlushWrites();
        }
      }
    });
  }
  Register(EPOLLIN | EPOLLET | EPOLLOUT);
  want_write_ = true;
}

Connection::~Connection() {
  *alive_ = false;
  on_close_ = nullptr;  // destruction is not a close event
  Close();
}

void Connection::Register(uint32_t events) {
  loop_->AddFd(fd_, events, [this](uint32_t ev) { OnEvents(ev); });
}

void Connection::OnEvents(uint32_t events) {
  if (fd_ < 0) {
    return;
  }
  if (connecting_ && (events & (EPOLLOUT | EPOLLERR | EPOLLHUP))) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      Close();
      return;
    }
    connecting_ = false;
    if (on_connect_) {
      on_connect_(this);
    }
    if (fd_ < 0) {
      return;
    }
    FlushWrites();
    if (fd_ < 0) {
      return;
    }
  }
  if (events & EPOLLIN) {
    ReadAll();
    if (fd_ < 0) {
      return;
    }
  }
  if (events & EPOLLOUT) {
    FlushWrites();
    if (fd_ < 0) {
      return;
    }
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    Close();
  }
}

void Connection::ReadAll() {
  uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      if (!decoder_.Feed(buf, static_cast<size_t>(n))) {
        Close();  // oversized frame: protocol violation
        return;
      }
      while (auto frame = decoder_.Next()) {
        if (on_frame_) {
          on_frame_(this, std::move(*frame));
        }
        if (fd_ < 0) {
          return;  // a handler closed us
        }
      }
      continue;
    }
    if (n == 0) {
      Close();  // peer closed (possibly mid-frame; decoder_.buffered() > 0)
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;  // drained (edge-triggered contract)
    }
    if (errno == EINTR) {
      continue;
    }
    Close();
    return;
  }
}

void Connection::FlushWrites() {
  while (!outq_.empty()) {
    auto& [buf, off] = outq_.front();
    // MSG_NOSIGNAL: a peer that died between epoll batches must surface as
    // EPIPE (-> Close -> redial), never as process-fatal SIGPIPE.
    const ssize_t n =
        ::send(fd_, buf->data() + off, buf->size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      pending_bytes_ -= static_cast<size_t>(n);
      if (off == buf->size()) {
        outq_.pop_front();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    Close();
    return;
  }
  UpdateWriteInterest();
}

void Connection::UpdateWriteInterest() {
  if (fd_ < 0) {
    return;
  }
  const bool want = !outq_.empty() || connecting_;
  if (want != want_write_) {
    want_write_ = want;
    loop_->ModFd(fd_, EPOLLIN | EPOLLET | (want ? uint32_t{EPOLLOUT} : 0u));
  }
}

std::shared_ptr<const Bytes> Connection::Frame(const Bytes& payload) {
  return std::make_shared<const Bytes>(EncodeFrame(payload));
}

void Connection::Send(const Bytes& payload) { SendFramed(Frame(payload)); }

void Connection::SendFramed(std::shared_ptr<const Bytes> framed) {
  if (fd_ < 0) {
    return;
  }
  pending_bytes_ += framed->size();
  if (pending_bytes_ > kMaxPendingWriteBytes) {
    Close();
    return;
  }
  outq_.emplace_back(std::move(framed), 0);
  if (!connecting_) {
    FlushWrites();
  }
}

void Connection::Close() {
  if (fd_ < 0) {
    return;
  }
  loop_->DelFd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    // May hand us to the owner's graveyard; nothing after this touches
    // members, so the deferred destruction pattern is safe.
    on_close_(this);
  }
}

// ---------------------------------------------------------------------------
// ServerNode

ServerNode::ServerNode(EventLoop* loop, DeployConfig cfg, size_t index)
    : loop_(loop), cfg_(std::move(cfg)), index_(index) {
  std::vector<BigInt> client_privs;
  def_ = BuildDeployGroup(cfg_, &server_privs_, &client_privs);
  priv_ = server_privs_[index_];
  secret_ = SessionSecret(cfg_.seed, def_.Id());
  for (size_t i = 0; i < cfg_.num_clients; ++i) {
    const size_t h = i / cfg_.clients_per_host;
    if (cfg_.host_upstream(h) == index_) {
      attached_.push_back(static_cast<uint32_t>(i));
    }
  }
  sibling_out_.assign(cfg_.num_servers, nullptr);
  sibling_in_.assign(cfg_.num_servers, nullptr);
  dial_backoff_us_.assign(cfg_.num_servers, 200 * 1000);
  dial_jitter_.resize(cfg_.num_servers);
  for (size_t j = 0; j < cfg_.num_servers; ++j) {
    dial_jitter_[j] = JitterSeed(cfg_.seed, index_, j);
  }
  rosters_.resize(cfg_.num_servers);
  mix_steps_.resize(cfg_.num_servers);
  logic_ = std::make_unique<DissentServer>(
      def_, index_, priv_, DeployNodeRng(cfg_, DeployRngKind::kServerLogic, index_),
      std::max<size_t>(cfg_.pipeline_depth, 1));
  logic_->SetEvidenceRounds(cfg_.evidence_rounds);
}

ServerNode::~ServerNode() {
  *alive_guard_ = false;
  if (listen_fd_ >= 0) {
    loop_->DelFd(listen_fd_);
    ::close(listen_fd_);
  }
}

bool ServerNode::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return false;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.server_port(index_));
  if (inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1 ||
      bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listen_fd_, 511) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  loop_->AddFd(listen_fd_, EPOLLIN | EPOLLET, [this](uint32_t) {
    for (;;) {
      const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        return;  // EAGAIN (drained) or transient error; ET re-arms on next conn
      }
      AdoptInbound(fd);
    }
  });
  return true;
}

void ServerNode::Start() {
  for (size_t j = 0; j < cfg_.num_servers; ++j) {
    if (j != index_) {
      DialSibling(j);
    }
  }
  // A server with no attached clients waits on zero submissions: its
  // (empty) roster is ready immediately and nothing else would trigger it.
  MaybeBuildOwnRoster();
}

Connection* ServerNode::AdoptInbound(int fd) {
  auto conn = std::make_unique<Connection>(loop_, fd);
  Connection* c = conn.get();
  conns_[c] = std::move(conn);
  c->set_on_close([this](Connection* dead) { DropConnection(dead); });
  c->set_on_frame([this](Connection* from, Bytes payload) { OnFrame(from, std::move(payload)); });
  return c;
}

void ServerNode::DropConnection(Connection* conn) {
  for (size_t j = 0; j < sibling_in_.size(); ++j) {
    if (sibling_in_[j] == conn) {
      sibling_in_[j] = nullptr;
    }
  }
  for (size_t j = 0; j < sibling_out_.size(); ++j) {
    if (sibling_out_[j] == conn) {
      sibling_out_[j] = nullptr;
      // Redial with backoff (plus seeded per-link jitter) so a restarted
      // sibling regains its link without the fleet retrying in lockstep.
      const int64_t delay =
          dial_backoff_us_[j] + NextBackoffJitter(dial_jitter_[j], dial_backoff_us_[j]);
      dial_backoff_us_[j] = std::min<int64_t>(dial_backoff_us_[j] * 2, 2 * 1000000);
      auto alive = alive_guard_;
      loop_->ScheduleAfter(delay, [this, j, alive] {
        if (*alive && sibling_out_[j] == nullptr) {
          DialSibling(j);
        }
      });
    }
  }
  host_conns_.erase(conn);
  for (auto it = client_conn_.begin(); it != client_conn_.end();) {
    it = it->second == conn ? client_conn_.erase(it) : std::next(it);
  }
  auto it = conns_.find(conn);
  if (it != conns_.end()) {
    if (!conn->closed()) {
      conn->set_on_close(nullptr);
      conn->Close();
    }
    graveyard_.push_back(std::move(it->second));
    conns_.erase(it);
    if (!cleanup_scheduled_) {
      cleanup_scheduled_ = true;
      auto alive = alive_guard_;
      loop_->ScheduleAfter(0, [this, alive] {
        if (*alive) {
          graveyard_.clear();
          cleanup_scheduled_ = false;
        }
      });
    }
  }
}

void ServerNode::DialSibling(size_t j) {
  auto conn =
      std::make_unique<Connection>(loop_, cfg_.host, cfg_.sibling_dial_port(index_, j));
  Connection* c = conn.get();
  conns_[c] = std::move(conn);
  sibling_out_[j] = c;
  c->set_on_close([this](Connection* dead) { DropConnection(dead); });
  // The outbound leg is send-only; inbound sibling frames arrive on the
  // sibling's own dial to us.
  c->set_on_connect([this, j](Connection*) { OnSiblingConnected(j); });
}

void ServerNode::OnSiblingConnected(size_t j) {
  dial_backoff_us_[j] = 200 * 1000;
  Connection* c = sibling_out_[j];
  if (c == nullptr) {
    return;
  }
  const uint64_t nonce = static_cast<uint64_t>(loop_->NowUs()) ^ (index_ << 48);
  c->Send(SerializeNet(MakeHello(secret_, Hello::kServer, static_cast<uint32_t>(index_), 1,
                                 nonce)));
  // Only now may protocol frames flow: anything queued while the dial was
  // still in flight would have preceded the hello and been dropped as
  // unauthenticated by the sibling.
  c->greeted = true;
  SendSchedStateTo(j);
}

void ServerNode::SendSchedStateTo(size_t j) {
  // A redial during scheduling must replay our own contributions: the
  // receiver's first-write-wins slots make this idempotent. Engine traffic
  // needs no replay here — the reliable mailbox re-sends it.
  Connection* c = sibling_out_[j];
  if (c == nullptr || restored_) {
    return;
  }
  if (own_roster_sent_ && rosters_[index_].has_value()) {
    c->Send(SerializeNet(NetMessage{*rosters_[index_]}));
  }
  if (own_step_sent_ && mix_steps_[index_].has_value()) {
    c->Send(SerializeNet(
        NetMessage{SchedMix{static_cast<uint32_t>(index_), *mix_steps_[index_]}}));
  }
}

void ServerNode::SendToSibling(size_t j, const Bytes& payload) {
  if (sibling_out_[j] != nullptr && sibling_out_[j]->greeted) {
    sibling_out_[j]->Send(payload);
  }
}

void ServerNode::BroadcastToSiblings(const Bytes& payload) {
  auto framed = Connection::Frame(payload);
  for (size_t j = 0; j < cfg_.num_servers; ++j) {
    if (j != index_ && sibling_out_[j] != nullptr && sibling_out_[j]->greeted) {
      sibling_out_[j]->SendFramed(framed);
    }
  }
}

void ServerNode::OnFrame(Connection* conn, Bytes payload) {
  if (IsNetFrame(payload)) {
    auto msg = ParseNet(payload);
    if (!msg.has_value()) {
      DropConnection(conn);
      return;
    }
    OnNetMessage(conn, std::move(*msg));
    return;
  }
  if (!conn->identified) {
    DropConnection(conn);  // protocol frames before hello: not authenticated
    return;
  }
  auto msg = ParseWireShared(payload);
  if (msg == nullptr) {
    return;
  }
  OnWireMessage(conn, std::move(msg));
}

void ServerNode::OnNetMessage(Connection* conn, NetMessage msg) {
  if (auto* hello = std::get_if<Hello>(&msg)) {
    HandleHello(conn, *hello);
    return;
  }
  if (!conn->identified) {
    DropConnection(conn);
    return;
  }
  if (restored_) {
    return;  // session already live; scheduling frames are stale chatter
  }
  if (auto* submit = std::get_if<SchedSubmit>(&msg)) {
    if (conn->peer_role != Hello::kClientHost || submit->client_id < conn->first_id ||
        submit->client_id >= conn->first_id + conn->id_count) {
      return;
    }
    sched_rows_.emplace(submit->client_id, std::move(submit->row));  // first write wins
    MaybeBuildOwnRoster();
    return;
  }
  if (auto* roster = std::get_if<SchedRoster>(&msg)) {
    const uint32_t j = roster->server_id;
    if (conn->peer_role != Hello::kServer || conn->first_id != j || j >= cfg_.num_servers ||
        rosters_[j].has_value()) {
      return;
    }
    // Every roster entry must actually attach to the claiming server.
    for (const auto& e : roster->entries) {
      if (e.client_id >= cfg_.num_clients ||
          cfg_.host_upstream(e.client_id / cfg_.clients_per_host) != j) {
        return;
      }
    }
    rosters_[j] = std::move(*roster);
    MaybeAssembleMatrix();
    return;
  }
  if (auto* mix = std::get_if<SchedMix>(&msg)) {
    const uint32_t j = mix->server_id;
    if (conn->peer_role != Hello::kServer || conn->first_id != j || j >= cfg_.num_servers ||
        mix_steps_[j].has_value()) {
      return;
    }
    mix_steps_[j] = std::move(mix->step);
    TryAdvanceCascade();
    return;
  }
  // SchedKeys is server->client-host only; ignore here.
}

void ServerNode::HandleHello(Connection* conn, const Hello& hello) {
  if (conn->identified || !VerifyHello(secret_, hello)) {
    DropConnection(conn);
    return;
  }
  if (hello.role == Hello::kServer) {
    const uint32_t j = hello.first_id;
    if (hello.count != 1 || j >= cfg_.num_servers || j == index_) {
      DropConnection(conn);
      return;
    }
    if (sibling_in_[j] != nullptr) {
      DropConnection(sibling_in_[j]);  // stale link from a dead incarnation
    }
    sibling_in_[j] = conn;
  } else {
    const uint32_t first = hello.first_id;
    const uint32_t count = hello.count;
    const size_t h = first / cfg_.clients_per_host;
    if (first % cfg_.clients_per_host != 0 || count != cfg_.host_num_clients(h) ||
        count == 0 || cfg_.host_upstream(h) != index_) {
      DropConnection(conn);
      return;
    }
    for (uint32_t i = first; i < first + count; ++i) {
      auto it = client_conn_.find(i);
      if (it != client_conn_.end() && it->second != conn) {
        DropConnection(it->second);  // replaced by a reconnect
      }
      client_conn_[i] = conn;
    }
    host_conns_.insert(conn);
    if (keys_ready_ && sched_keys_frame_ != nullptr) {
      conn->SendFramed(sched_keys_frame_);
    }
  }
  conn->identified = true;
  conn->peer_role = hello.role;
  conn->first_id = hello.first_id;
  conn->id_count = hello.count;
}

void ServerNode::MaybeBuildOwnRoster() {
  if (own_roster_sent_ || keys_ready_ || sched_rows_.size() < attached_.size()) {
    return;
  }
  SchedRoster roster;
  roster.server_id = static_cast<uint32_t>(index_);
  for (const auto& [id, row] : sched_rows_) {  // map order: strictly increasing
    roster.entries.push_back(SchedRosterEntry{id, row});
  }
  rosters_[index_] = roster;
  own_roster_sent_ = true;
  BroadcastToSiblings(SerializeNet(NetMessage{std::move(roster)}));
  MaybeAssembleMatrix();
}

void ServerNode::MaybeAssembleMatrix() {
  if (keys_ready_ || !submissions_.empty() ||
      !std::all_of(rosters_.begin(), rosters_.end(),
                   [](const auto& r) { return r.has_value(); })) {
    return;
  }
  std::map<uint32_t, const Bytes*> merged;
  for (const auto& r : rosters_) {
    for (const auto& e : r->entries) {
      merged[e.client_id] = &e.row;
    }
  }
  if (merged.size() != cfg_.num_clients) {
    std::fprintf(stderr, "server %zu: scheduling roster incomplete (%zu/%zu)\n", index_,
                 merged.size(), cfg_.num_clients);
    return;
  }
  submissions_.reserve(cfg_.num_clients);
  for (const auto& [id, row] : merged) {
    auto parsed = ParseCiphertextRow(*def_.group, *row, 1);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "server %zu: malformed submission from client %u\n", index_, id);
      submissions_.clear();
      return;
    }
    submissions_.push_back(std::move(*parsed));
  }
  cascade_ = submissions_;
  TryAdvanceCascade();
}

void ServerNode::TryAdvanceCascade() {
  if (submissions_.empty() || keys_ready_) {
    return;
  }
  while (steps_applied_ < cfg_.num_servers) {
    const size_t j = steps_applied_;
    if (j == index_ && !own_step_sent_) {
      SecureRng rng = DeployNodeRng(cfg_, DeployRngKind::kServerSched, index_);
      MixStep step = KeyShuffleMixStep(def_, index_, priv_, cascade_, rng);
      Bytes serialized = SerializeMixStep(*def_.group, step);
      mix_steps_[index_] = serialized;
      own_step_sent_ = true;
      BroadcastToSiblings(
          SerializeNet(NetMessage{SchedMix{static_cast<uint32_t>(index_), serialized}}));
      cascade_ = step.decrypted;
      verified_steps_.push_back(std::move(step));
      ++steps_applied_;
      continue;
    }
    if (j != index_ && mix_steps_[j].has_value()) {
      auto step = ParseMixStep(*def_.group, *mix_steps_[j]);
      if (!step.has_value() || !VerifyMixStep(def_, j, cascade_, *step)) {
        std::fprintf(stderr, "server %zu: mix step %zu failed verification\n", index_, j);
        mix_steps_[j].reset();  // a replay may still deliver an honest one
        return;
      }
      cascade_ = step->decrypted;
      verified_steps_.push_back(std::move(*step));
      ++steps_applied_;
      continue;
    }
    return;  // waiting on an earlier server's step
  }
  std::vector<BigInt> keys;
  keys.reserve(cascade_.size());
  for (const auto& row : cascade_) {
    keys.push_back(row[0].b);
  }
  if (cfg_.verify_cascade) {
    ShuffleCascadeResult result;
    result.final_rows = cascade_;
    result.steps = verified_steps_;
    if (!VerifyShuffleCascade(def_, submissions_, result)) {
      std::fprintf(stderr, "server %zu: full cascade re-verification failed\n", index_);
      return;
    }
  }
  FinishScheduling(std::move(keys));
}

void ServerNode::FinishScheduling(std::vector<BigInt> keys) {
  pseudonym_keys_ = std::move(keys);
  logic_->SetPseudonymKeys(pseudonym_keys_);
  logic_->BeginSlots(cfg_.num_clients);
  InstallEngine();
  session_start_us_ = loop_->NowUs();
  last_round_us_ = session_start_us_;
  Dispatch(engine_->StartSession(session_start_us_));
  // Only now may clients learn their slots: our engine is live, so the
  // submissions the keys trigger land in an open round.
  SchedKeys msg;
  msg.keys.reserve(pseudonym_keys_.size());
  for (const auto& k : pseudonym_keys_) {
    msg.keys.push_back(def_.group->ElementToBytes(k));
  }
  sched_keys_frame_ = Connection::Frame(SerializeNet(NetMessage{std::move(msg)}));
  keys_ready_ = true;
  for (Connection* c : host_conns_) {
    c->SendFramed(sched_keys_frame_);
  }
  // Drop the scheduling scratch matrices; keep our own roster and mix step
  // so SendSchedStateTo can still replay them to a slow sibling that
  // reconnects before finishing its cascade.
  sched_rows_.clear();
  submissions_.clear();
  cascade_.clear();
  verified_steps_.clear();
}

ServerEngine::Config ServerNode::EngineConfig() const {
  ServerEngine::Config ec;
  ec.window_fraction = cfg_.window_fraction;
  ec.window_multiplier = cfg_.window_multiplier;
  ec.hard_deadline_us = cfg_.hard_deadline_us;
  ec.adaptive_window = false;
  ec.pipeline_depth = std::max<size_t>(cfg_.pipeline_depth, 1);
  ec.attached_clients = attached_;
  ec.reliability = cfg_.reliability;
  ec.output_history = cfg_.output_history;
  ec.abort_deadline_us = cfg_.abort_deadline_us;
  ec.abort_agreement = cfg_.abort_agreement;
  return ec;
}

void ServerNode::InstallEngine() {
  engine_ = std::make_unique<ServerEngine>(logic_.get(), def_, EngineConfig());
}

Bytes ServerNode::SnapshotBytes() const {
  if (engine_ == nullptr) {
    return {};
  }
  Writer w;
  w.U32(kSnapshotMagic);
  w.U8(kSnapshotVersion);
  w.U32(static_cast<uint32_t>(pseudonym_keys_.size()));
  for (const auto& k : pseudonym_keys_) {
    w.Blob(def_.group->ElementToBytes(k));
  }
  w.Blob(engine_->SerializeSnapshot());
  return w.Take();
}

bool ServerNode::RestoreFromSnapshot(const Bytes& snapshot) {
  Reader r(snapshot);
  uint32_t magic;
  uint8_t version;
  uint32_t nkeys;
  if (!r.U32(&magic) || magic != kSnapshotMagic || !r.U8(&version) ||
      version != kSnapshotVersion || !r.U32(&nkeys) || nkeys != cfg_.num_clients) {
    return false;
  }
  std::vector<BigInt> keys;
  keys.reserve(nkeys);
  for (uint32_t i = 0; i < nkeys; ++i) {
    Bytes kb;
    if (!r.Blob(&kb)) {
      return false;
    }
    auto k = def_.group->ElementFromBytes(kb);
    if (!k.has_value()) {
      return false;
    }
    keys.push_back(std::move(*k));
  }
  Bytes engine_state;
  if (!r.Blob(&engine_state) || !r.AtEnd()) {
    return false;
  }
  // Fresh logic; RestoreState (inside RestoreSnapshot) reseeds its rng
  // deterministically from the state bytes, so the seed here is irrelevant.
  logic_ = std::make_unique<DissentServer>(def_, index_, priv_,
                                           SecureRng::FromLabel(0x52455354u ^ index_),
                                           std::max<size_t>(cfg_.pipeline_depth, 1));
  logic_->SetEvidenceRounds(cfg_.evidence_rounds);
  logic_->SetPseudonymKeys(keys);
  logic_->BeginSlots(cfg_.num_clients);
  pseudonym_keys_ = std::move(keys);
  InstallEngine();
  auto actions = engine_->RestoreSnapshot(engine_state, loop_->NowUs());
  if (!actions.has_value()) {
    engine_.reset();
    return false;
  }
  restored_ = true;
  session_start_us_ = loop_->NowUs();
  last_round_us_ = session_start_us_;
  SchedKeys msg;
  for (const auto& k : pseudonym_keys_) {
    msg.keys.push_back(def_.group->ElementToBytes(k));
  }
  sched_keys_frame_ = Connection::Frame(SerializeNet(NetMessage{std::move(msg)}));
  keys_ready_ = true;
  Dispatch(std::move(*actions));
  return true;
}

void ServerNode::OnWireMessage(Connection* conn, std::shared_ptr<const WireMessage> msg) {
  if (engine_ == nullptr) {
    // Scheduling still in flight locally; a faster sibling's engine frames
    // are dropped here and healed by its reliable mailbox.
    return;
  }
  Peer peer;
  if (conn->peer_role == Hello::kServer) {
    peer = ServerPeer(conn->first_id);
  } else {
    // Claimed client ids are authentic iff inside the connection's hello
    // range (NetDissent's machine-hosting check, per-connection).
    uint32_t claimed;
    if (const auto* submit = std::get_if<wire::ClientSubmit>(msg.get())) {
      claimed = submit->client_id;
    } else if (const auto* acc = std::get_if<wire::AccusationSubmit>(msg.get())) {
      claimed = acc->client_id;
    } else if (const auto* rebuttal = std::get_if<wire::BlameRebuttal>(msg.get())) {
      claimed = rebuttal->client_id;
    } else if (const auto* catch_up = std::get_if<wire::CatchUpRequest>(msg.get())) {
      claimed = catch_up->client_id;
    } else if (const auto* rel = std::get_if<wire::Reliable>(msg.get())) {
      claimed = rel->from_id;
    } else if (const auto* ack = std::get_if<wire::Ack>(msg.get())) {
      claimed = ack->from_id;
    } else {
      return;
    }
    if (claimed < conn->first_id || claimed >= conn->first_id + conn->id_count) {
      return;
    }
    peer = ClientPeer(claimed);
  }
  Dispatch(engine_->HandleMessage(peer, *msg, loop_->NowUs()));
}

void ServerNode::Dispatch(ServerEngine::Actions actions) {
  // Serialize once per shared payload: broadcast envelopes are emitted
  // consecutively and alias one message object.
  const WireMessage* cache_key = nullptr;
  std::shared_ptr<const Bytes> cache_frame;
  for (const Envelope& env : actions.out) {
    if (env.msg.get() != cache_key) {
      cache_key = env.msg.get();
      cache_frame = Connection::Frame(*SerializeWireShared(*env.msg));
    }
    switch (env.to.kind) {
      case Peer::Kind::kServer:
        if (env.to.index < sibling_out_.size() && sibling_out_[env.to.index] != nullptr &&
            sibling_out_[env.to.index]->greeted) {
          sibling_out_[env.to.index]->SendFramed(cache_frame);
        }
        break;
      case Peer::Kind::kClient: {
        auto it = client_conn_.find(env.to.index);
        if (it != client_conn_.end()) {
          it->second->SendFramed(cache_frame);
        }
        break;
      }
      case Peer::Kind::kAttachedClients:
        // One frame per client-hosting connection; the hosts fan out
        // in-process, so distribution cost scales with processes.
        for (Connection* c : host_conns_) {
          c->SendFramed(cache_frame);
        }
        break;
    }
  }
  for (const TimerRequest& t : actions.timers) {
    auto alive = alive_guard_;
    loop_->ScheduleAfter(t.delay_us, [this, alive, token = t.token] {
      if (*alive && engine_ != nullptr) {
        Dispatch(engine_->HandleTimer(token, loop_->NowUs()));
      }
    });
  }
  for (const ServerEngine::RoundDone& done : actions.done) {
    last_round_us_ = loop_->NowUs();
    if (on_round) {
      on_round(done);
    }
  }
  if (!target_reported_ && engine_ != nullptr && cfg_.rounds > 0 &&
      engine_->rounds_completed() >= cfg_.rounds) {
    target_reported_ = true;
    if (on_target_rounds) {
      on_target_rounds();
    }
  }
}

uint64_t ServerNode::rounds_completed() const {
  return engine_ == nullptr ? 0 : engine_->rounds_completed();
}

uint64_t ServerNode::retransmits() const {
  return engine_ == nullptr ? 0 : engine_->retransmits();
}

uint64_t ServerNode::pipelined_submissions() const {
  return engine_ == nullptr ? 0 : engine_->pipelined_submissions();
}

bool ServerNode::halted() const { return engine_ != nullptr && engine_->halted(); }

uint64_t ServerNode::reliable_sent() const {
  return engine_ == nullptr ? 0 : engine_->reliable_sent();
}

uint64_t ServerNode::duplicates_dropped() const {
  return engine_ == nullptr ? 0 : engine_->duplicates_dropped();
}

uint64_t ServerNode::max_in_flight() const {
  return engine_ == nullptr ? 0 : engine_->max_in_flight();
}

uint64_t ServerNode::rounds_aborted() const {
  return engine_ == nullptr ? 0 : engine_->rounds_aborted();
}

uint64_t ServerNode::catch_up_rounds() const {
  return engine_ == nullptr ? 0 : engine_->catch_up_rounds();
}

double ServerNode::elapsed_seconds() const {
  return static_cast<double>(last_round_us_ - session_start_us_) / 1e6;
}

// ---------------------------------------------------------------------------
// ClientHostNode

ClientHostNode::ClientHostNode(EventLoop* loop, DeployConfig cfg, size_t host_index)
    : loop_(loop), cfg_(std::move(cfg)), host_(host_index) {
  first_ = cfg_.host_first_client(host_);
  count_ = cfg_.host_num_clients(host_);
  upstream_ = cfg_.host_upstream(host_);
  std::vector<BigInt> client_privs;
  def_ = BuildDeployGroup(cfg_, nullptr, &client_privs);
  secret_ = SessionSecret(cfg_.seed, def_.Id());
  // Hosts occupy the id space above the servers in the jitter seeding.
  redial_jitter_ = JitterSeed(cfg_.seed, cfg_.num_servers + host_, upstream_);
  const size_t depth = std::max<size_t>(cfg_.pipeline_depth, 1);
  for (size_t k = 0; k < count_; ++k) {
    const size_t i = first_ + k;
    logic_.push_back(std::make_unique<DissentClient>(
        def_, i, client_privs[i], DeployNodeRng(cfg_, DeployRngKind::kClientLogic, i), depth));
    ClientEngine::Config ec;
    ec.upstream_server = static_cast<uint32_t>(upstream_);
    ec.pipeline_depth = depth;
    ec.auto_submit = true;
    ec.reliability = cfg_.reliability;
    ec.resync_timeout_us = cfg_.resync_timeout_us;
    engines_.push_back(std::make_unique<ClientEngine>(logic_.back().get(), def_, ec));
    // The scheduling submission draws its encryption randomness exactly
    // once, here — a reconnect must replay the identical row or the cascade
    // would diverge from the reference discipline.
    SecureRng rng = DeployNodeRng(cfg_, DeployRngKind::kClientSched, i);
    sched_rows_.push_back(SerializeCiphertextRow(
        *def_.group, EncryptPseudonymKey(def_, logic_.back()->pseudonym().pub, rng)));
  }
}

ClientHostNode::~ClientHostNode() { *alive_guard_ = false; }

void ClientHostNode::Start() { Dial(); }

void ClientHostNode::Dial() {
  conn_ = std::make_unique<Connection>(loop_, cfg_.host, cfg_.client_dial_port(upstream_));
  conn_->set_on_connect([this](Connection*) { OnConnected(); });
  conn_->set_on_close([this](Connection*) { OnClosed(); });
  conn_->set_on_frame([this](Connection*, Bytes payload) { OnFrame(std::move(payload)); });
}

void ClientHostNode::OnConnected() {
  // Pin the connection for the whole greeting: a Send can fail synchronously
  // (peer reset between accept and our first write) and Close -> OnClosed
  // moves conn_ into dead_conn_ mid-call. The object itself outlives this
  // frame there, and Send on a closed connection is a no-op, so the raw
  // pointer stays safe where re-reading the conn_ member would not.
  Connection* c = conn_.get();
  redial_backoff_us_ = 200 * 1000;
  const uint64_t nonce = static_cast<uint64_t>(loop_->NowUs()) ^ (first_ << 20);
  c->Send(SerializeNet(MakeHello(secret_, Hello::kClientHost,
                                 static_cast<uint32_t>(first_),
                                 static_cast<uint32_t>(count_), nonce)));
  c->greeted = true;
  if (!slots_assigned_) {
    for (size_t k = 0; k < count_; ++k) {
      c->Send(SerializeNet(
          NetMessage{SchedSubmit{static_cast<uint32_t>(first_ + k), sched_rows_[k]}}));
    }
  }
}

void ClientHostNode::OnClosed() {
  // Defer destruction (we are inside the connection's callback) and redial
  // with the same seeded jitter discipline as the sibling links.
  dead_conn_ = std::move(conn_);
  const int64_t delay =
      redial_backoff_us_ + NextBackoffJitter(redial_jitter_, redial_backoff_us_);
  redial_backoff_us_ = std::min<int64_t>(redial_backoff_us_ * 2, 2 * 1000000);
  auto alive = alive_guard_;
  loop_->ScheduleAfter(delay, [this, alive] {
    if (*alive) {
      dead_conn_.reset();
      if (conn_ == nullptr) {
        Dial();
      }
    }
  });
}

void ClientHostNode::OnFrame(Bytes payload) {
  if (IsNetFrame(payload)) {
    auto msg = ParseNet(payload);
    if (msg.has_value()) {
      if (auto* keys = std::get_if<SchedKeys>(&*msg)) {
        HandleSchedKeys(*keys);
      }
    }
    return;
  }
  auto msg = ParseWireShared(payload);
  if (msg == nullptr) {
    return;
  }
  const Peer peer = ServerPeer(static_cast<uint32_t>(upstream_));
  // Unicast frames carry their addressee; broadcasts fan out to every
  // hosted client (mirrors NetDissent::DeliverToMachine).
  uint64_t unicast_to = UINT64_MAX;
  if (const auto* challenge = std::get_if<wire::BlameChallenge>(msg.get())) {
    unicast_to = challenge->client_id;
  } else if (const auto* rel = std::get_if<wire::Reliable>(msg.get())) {
    unicast_to = rel->to_id;
  } else if (const auto* ack = std::get_if<wire::Ack>(msg.get())) {
    unicast_to = ack->to_id;
  }
  if (unicast_to != UINT64_MAX) {
    if (unicast_to >= first_ && unicast_to < first_ + count_) {
      const size_t local = static_cast<size_t>(unicast_to) - first_;
      Dispatch(local, engines_[local]->HandleMessage(peer, *msg, loop_->NowUs()));
    }
    return;
  }
  if (!std::holds_alternative<wire::Output>(*msg) &&
      !std::holds_alternative<wire::BlameStart>(*msg) &&
      !std::holds_alternative<wire::BlameVerdict>(*msg) &&
      !std::holds_alternative<wire::RoundSummary>(*msg)) {
    return;
  }
  for (size_t local = 0; local < engines_.size(); ++local) {
    Dispatch(local, engines_[local]->HandleMessage(peer, *msg, loop_->NowUs()));
  }
}

void ClientHostNode::HandleSchedKeys(const SchedKeys& msg) {
  if (slots_assigned_ || msg.keys.size() != cfg_.num_clients) {
    return;
  }
  std::vector<BigInt> keys;
  keys.reserve(msg.keys.size());
  for (const auto& kb : msg.keys) {
    auto k = def_.group->ElementFromBytes(kb);
    if (!k.has_value()) {
      return;
    }
    keys.push_back(std::move(*k));
  }
  for (size_t local = 0; local < logic_.size(); ++local) {
    auto it = std::find(keys.begin(), keys.end(), logic_[local]->pseudonym().pub);
    if (it == keys.end()) {
      std::fprintf(stderr, "client host %zu: own pseudonym missing from key order\n", host_);
      return;
    }
    logic_[local]->AssignSlot(static_cast<size_t>(it - keys.begin()), keys.size());
  }
  slots_assigned_ = true;
  const int64_t now = loop_->NowUs();
  for (size_t local = 0; local < engines_.size(); ++local) {
    Dispatch(local, engines_[local]->StartSession(now));
  }
}

void ClientHostNode::Dispatch(size_t local, ClientEngine::Actions actions) {
  for (const Envelope& env : actions.out) {
    // Client engines only ever address their upstream server. Frames while
    // disconnected (or before our hello is queued) are dropped here; the
    // reliable mailbox re-sends them once the link is greeted.
    if (conn_ != nullptr && conn_->greeted && !conn_->closed()) {
      conn_->Send(SerializeWire(*env.msg));
    }
  }
  for (const TimerRequest& t : actions.timers) {
    auto alive = alive_guard_;
    loop_->ScheduleAfter(t.delay_us, [this, alive, local, token = t.token] {
      if (*alive) {
        Dispatch(local, engines_[local]->HandleTimer(token, loop_->NowUs()));
      }
    });
  }
  for (const ClientEngine::Delivery& d : actions.delivered) {
    if (on_delivery) {
      on_delivery(first_ + local, d);
    }
  }
}

uint64_t ClientHostNode::min_delivered_round() const {
  uint64_t min_round = UINT64_MAX;
  for (const auto& e : engines_) {
    min_round = std::min(min_round, e->last_output_round());
  }
  return min_round == UINT64_MAX ? 0 : min_round;
}

uint64_t ClientHostNode::retransmits() const {
  uint64_t total = 0;
  for (const auto& e : engines_) {
    total += e->retransmits();
  }
  return total;
}

}  // namespace net
}  // namespace dissent
