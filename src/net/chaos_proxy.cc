#include "src/net/chaos_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "src/net/net_wire.h"

namespace dissent {
namespace net {

namespace {

// Same splitmix64 discipline as the transport's redial jitter: one stream
// per link direction, advanced once per frame.
uint64_t ChaosSeed(uint64_t seed, uint64_t dialer, uint64_t target, bool forward) {
  return seed ^ (dialer * 0x9e3779b97f4a7c15ull) ^ (target * 0xc2b2ae3d27d4eb4full) ^
         (forward ? 0 : 0xd6e8feb86659fd93ull);
}

double NextUnit(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

int ListenOn(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(fd, 511) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

ChaosProxy::ChaosProxy(EventLoop* loop, DeployConfig cfg, ChaosPlan plan)
    : loop_(loop), cfg_(std::move(cfg)), plan_(plan) {
  const size_t m = cfg_.num_servers;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i == j) {
        continue;
      }
      auto link = std::make_unique<Link>();
      link->dialer = i;
      link->target = j;
      link->server_link = true;
      link->rng_fwd = ChaosSeed(plan_.seed, i, j, true);
      link->rng_rev = ChaosSeed(plan_.seed, i, j, false);
      links_.push_back(std::move(link));
    }
  }
  for (size_t j = 0; j < m; ++j) {
    auto link = std::make_unique<Link>();
    link->dialer = m + j;  // distinct stream block for the client-host links
    link->target = j;
    link->server_link = false;
    link->rng_fwd = ChaosSeed(plan_.seed, m + j, j, true);
    link->rng_rev = ChaosSeed(plan_.seed, m + j, j, false);
    links_.push_back(std::move(link));
  }
}

ChaosProxy::~ChaosProxy() {
  *alive_guard_ = false;
  for (auto& link : links_) {
    if (link->listen_fd >= 0) {
      loop_->DelFd(link->listen_fd);
      ::close(link->listen_fd);
    }
  }
}

bool ChaosProxy::Listen() {
  for (auto& link : links_) {
    const uint16_t port =
        link->server_link
            ? cfg_.sibling_dial_port(link->dialer, link->target)
            : cfg_.client_dial_port(link->target);
    link->listen_fd = ListenOn(cfg_.host, port);
    if (link->listen_fd < 0) {
      std::fprintf(stderr, "chaos-proxy: bind %s:%u failed\n", cfg_.host.c_str(), port);
      return false;
    }
    Link* l = link.get();
    loop_->AddFd(link->listen_fd, EPOLLIN | EPOLLET, [this, l](uint32_t) { AcceptOn(l); });
  }
  return true;
}

void ChaosProxy::Start() {
  start_us_ = loop_->NowUs();
  auto alive = alive_guard_;
  for (const auto& p : plan_.partitions) {
    // Window start: sever every established pair crossing the partition. New
    // dials during the window are refused in AcceptOn. Healing needs no
    // timer — once the window lapses, refused endpoints redial and succeed.
    loop_->ScheduleAfter(p.from_us, [this, alive] {
      if (!*alive) {
        return;
      }
      const int64_t t = FaultClockUs();
      std::vector<Pair*> doomed;
      for (auto& [ptr, pair] : pairs_) {
        if (PartitionActive(*pair->link, t)) {
          doomed.push_back(ptr);
        }
      }
      for (Pair* pair : doomed) {
        ++pairs_severed_;
        ClosePair(pair);
      }
    });
  }
}

int64_t ChaosProxy::FaultClockUs() const { return loop_->NowUs() - start_us_; }

bool ChaosProxy::PartitionActive(const Link& link, int64_t t_us) const {
  if (!link.server_link) {
    return false;
  }
  for (const auto& p : plan_.partitions) {
    if (t_us < p.from_us || t_us >= p.until_us) {
      continue;
    }
    const size_t a = link.dialer, b = link.target;
    const bool a_in_a = a >= p.a_lo && a <= p.a_hi;
    const bool a_in_b = a >= p.b_lo && a <= p.b_hi;
    const bool b_in_a = b >= p.a_lo && b <= p.a_hi;
    const bool b_in_b = b >= p.b_lo && b <= p.b_hi;
    if ((a_in_a && b_in_b) || (a_in_b && b_in_a)) {
      return true;
    }
  }
  return false;
}

void ChaosProxy::AcceptOn(Link* link) {
  for (;;) {
    const int fd = accept4(link->listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN: drained
    }
    if (PartitionActive(*link, FaultClockUs())) {
      // Connection-level severance: the dialer sees an immediate close and
      // retries with backoff until the window lapses.
      ++dials_refused_;
      ::close(fd);
      continue;
    }
    AdoptPair(link, fd);
  }
}

void ChaosProxy::AdoptPair(Link* link, int fd) {
  if (plan_.trace) {
    std::fprintf(stderr, "trace %8lld us link %zu->%zu adopt\n",
                 static_cast<long long>(FaultClockUs()), link->dialer, link->target);
  }
  auto pair = std::make_unique<Pair>();
  Pair* p = pair.get();
  p->link = link;
  p->inbound = std::make_unique<Connection>(loop_, fd);
  p->outbound =
      std::make_unique<Connection>(loop_, cfg_.host, cfg_.server_port(link->target));
  p->inbound->set_on_frame(
      [this, p](Connection*, Bytes payload) { Relay(p, true, std::move(payload)); });
  p->outbound->set_on_frame(
      [this, p](Connection*, Bytes payload) { Relay(p, false, std::move(payload)); });
  p->inbound->set_on_close([this, p](Connection*) { ClosePair(p); });
  p->outbound->set_on_close([this, p](Connection*) { ClosePair(p); });
  pairs_[p] = std::move(pair);
}

void ChaosProxy::ClosePair(Pair* pair) {
  auto it = pairs_.find(pair);
  if (it == pairs_.end()) {
    return;
  }
  if (plan_.trace) {
    std::fprintf(stderr, "trace %8lld us link %zu->%zu close (held %zu+%zu)\n",
                 static_cast<long long>(FaultClockUs()), pair->link->dialer,
                 pair->link->target, pair->held_fwd.size(), pair->held_rev.size());
  }
  for (Connection* c : {pair->inbound.get(), pair->outbound.get()}) {
    if (c != nullptr && !c->closed()) {
      c->set_on_close(nullptr);
      c->Close();
    }
  }
  // Defer destruction: we may be inside one leg's callback.
  graveyard_.push_back(std::move(it->second));
  pairs_.erase(it);
  if (!cleanup_scheduled_) {
    cleanup_scheduled_ = true;
    auto alive = alive_guard_;
    loop_->ScheduleAfter(0, [this, alive] {
      if (*alive) {
        graveyard_.clear();
        cleanup_scheduled_ = false;
      }
    });
  }
}

void ChaosProxy::Relay(Pair* pair, bool forward, Bytes payload) {
  Link& link = *pair->link;
  const int64_t t = FaultClockUs();
  if (plan_.trace) {
    std::fprintf(stderr, "trace %8lld us link %zu->%zu %s %s %zu B\n",
                 static_cast<long long>(t), link.dialer, link.target,
                 forward ? "fwd" : "rev", IsNetFrame(payload) ? "net" : "eng",
                 payload.size());
  }
  if (PartitionActive(link, t)) {
    // Belt and braces: a frame racing the window-start sweep dies with the
    // pair rather than leaking across the partition.
    ++pairs_severed_;
    ClosePair(pair);
    return;
  }
  uint64_t& rng = forward ? link.rng_fwd : link.rng_rev;
  if (plan_.Active() && t >= plan_.grace_us) {
    if (plan_.close > 0 && NextUnit(rng) < plan_.close) {
      ++closes_injected_;
      ClosePair(pair);
      return;
    }
    // Only reliability-wrapped engine frames are droppable: handshake and
    // scheduling traffic has no retransmission layer, and in-connection TCP
    // loss is not a real fault — the mailbox's cross-connection loss is.
    if (plan_.drop > 0 && !IsNetFrame(payload) && NextUnit(rng) < plan_.drop) {
      ++frames_dropped_;
      return;
    }
    if (plan_.stall > 0 && NextUnit(rng) < plan_.stall) {
      bool& stalled = forward ? pair->stalled_fwd : pair->stalled_rev;
      if (!stalled) {
        stalled = true;
        ++stalls_injected_;
        auto alive = alive_guard_;
        loop_->ScheduleAfter(plan_.stall_us, [this, alive, pair, forward] {
          if (*alive && pairs_.count(pair) > 0) {
            FlushHeld(pair, forward);
          }
        });
      }
    }
  }
  auto& held = forward ? pair->held_fwd : pair->held_rev;
  const bool stalled = forward ? pair->stalled_fwd : pair->stalled_rev;
  if (stalled) {
    // Order within the direction is preserved: everything behind the stalled
    // frame waits with it (a latency spike, not a reorder).
    held.push_back(std::move(payload));
    return;
  }
  ++frames_forwarded_;
  (forward ? pair->outbound : pair->inbound)->Send(payload);
}

void ChaosProxy::FlushHeld(Pair* pair, bool forward) {
  auto& held = forward ? pair->held_fwd : pair->held_rev;
  bool& stalled = forward ? pair->stalled_fwd : pair->stalled_rev;
  stalled = false;
  Connection* out = forward ? pair->outbound.get() : pair->inbound.get();
  while (!held.empty()) {
    ++frames_forwarded_;
    out->Send(held.front());
    held.pop_front();
  }
}

}  // namespace net
}  // namespace dissent
