#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dissent {
namespace net {

namespace {

// epoll payload: (gen << 20) | fd. A billion registrations per fd number is
// plenty before wraparound; fds on this loop stay far below 2^20.
constexpr uint64_t kFdBits = 20;
constexpr uint64_t kFdMask = (1ull << kFdBits) - 1;

[[noreturn]] void Die(const char* what) {
  std::perror(what);
  std::abort();
}

}  // namespace

EventLoop::EventLoop() {
  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) {
    Die("epoll_create1");
  }
  timerfd_ = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timerfd_ < 0) {
    Die("timerfd_create");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = ~0ull;  // sentinel: the timerfd itself
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, timerfd_, &ev) < 0) {
    Die("epoll_ctl(timerfd)");
  }
}

EventLoop::~EventLoop() {
  ::close(timerfd_);
  ::close(epfd_);
}

int64_t EventLoop::NowUs() const {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

void EventLoop::AddFd(int fd, uint32_t events, FdHandler handler) {
  FdEntry& entry = fds_[fd];
  entry.gen = next_gen_++;
  entry.handler = std::move(handler);
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = (entry.gen << kFdBits) | static_cast<uint64_t>(fd);
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    Die("epoll_ctl(add)");
  }
}

void EventLoop::ModFd(int fd, uint32_t events) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return;
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = (it->second.gen << kFdBits) | static_cast<uint64_t>(fd);
  if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    Die("epoll_ctl(mod)");
  }
}

void EventLoop::DelFd(int fd) {
  if (fds_.erase(fd) == 0) {
    return;
  }
  // The fd may already be closed by the caller; ignore ENOENT/EBADF.
  epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

uint64_t EventLoop::ScheduleAfter(int64_t delay_us, TimerFn fn) {
  const uint64_t id = next_timer_id_++;
  if (delay_us < 0) {
    delay_us = 0;
  }
  timers_.push(Timer{NowUs() + delay_us, id});
  timer_fns_[id] = std::move(fn);
  ArmTimerFd();
  return id;
}

void EventLoop::CancelTimer(uint64_t id) { timer_fns_.erase(id); }

void EventLoop::ArmTimerFd() {
  // Drop cancelled heads so the timerfd isn't armed for a tombstone.
  while (!timers_.empty() && timer_fns_.find(timers_.top().id) == timer_fns_.end()) {
    timers_.pop();
  }
  itimerspec spec{};
  if (!timers_.empty()) {
    int64_t delta = timers_.top().due_us - NowUs();
    if (delta < 1) {
      delta = 1;  // 0 would disarm; fire "immediately" instead
    }
    spec.it_value.tv_sec = delta / 1000000;
    spec.it_value.tv_nsec = (delta % 1000000) * 1000;
  }
  if (timerfd_settime(timerfd_, 0, &spec, nullptr) < 0) {
    Die("timerfd_settime");
  }
}

void EventLoop::FireDueTimers() {
  const int64_t now = NowUs();
  while (!timers_.empty() && timers_.top().due_us <= now) {
    const uint64_t id = timers_.top().id;
    timers_.pop();
    auto it = timer_fns_.find(id);
    if (it == timer_fns_.end()) {
      continue;  // cancelled
    }
    TimerFn fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();  // may schedule/cancel timers or mutate fds
  }
  ArmTimerFd();
}

void EventLoop::PollOnce(int64_t max_wait_us) {
  int timeout_ms = -1;
  if (max_wait_us >= 0) {
    timeout_ms = static_cast<int>((max_wait_us + 999) / 1000);
  }
  epoll_event events[64];
  int n = epoll_wait(epfd_, events, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) {
      return;
    }
    Die("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    if (events[i].data.u64 == ~0ull) {
      uint64_t expirations;
      while (::read(timerfd_, &expirations, sizeof(expirations)) > 0) {
      }
      FireDueTimers();
      continue;
    }
    const int fd = static_cast<int>(events[i].data.u64 & kFdMask);
    const uint64_t gen = events[i].data.u64 >> kFdBits;
    auto it = fds_.find(fd);
    if (it == fds_.end() || it->second.gen != gen) {
      continue;  // closed/re-registered by an earlier handler in this batch
    }
    // Copy: the handler may DelFd(fd) (erasing the entry) while running.
    FdHandler handler = it->second.handler;
    handler(events[i].events);
  }
  // Timers may have come due while handlers ran (or epoll_wait timed out
  // before the timerfd tick was delivered).
  FireDueTimers();
}

void EventLoop::Run() {
  stop_ = false;
  while (!stop_) {
    PollOnce(-1);
  }
}

bool EventLoop::RunUntil(const std::function<bool()>& done, int64_t timeout_us) {
  const int64_t deadline = NowUs() + timeout_us;
  while (!done()) {
    const int64_t left = deadline - NowUs();
    if (left <= 0) {
      return false;
    }
    PollOnce(left < 20000 ? left : 20000);
  }
  return true;
}

}  // namespace net
}  // namespace dissent
