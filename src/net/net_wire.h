// Transport-control messages for the real-socket transport.
//
// These frames never reach the protocol engines: they carry connection
// identity (the hello handshake) and the distributed key-shuffle exchange
// that runs *before* the engines' session starts. Their tag byte lives at
// 0x80 and above — disjoint from wire.h's protocol tags (1..20) — so one
// byte of a framed payload routes it to the right codec.
//
// Peer identity (hello): PR 6's delivery-assumptions table requires the
// transport to hand the engines an authenticated `Peer from`. Real
// deployments would terminate TLS with roster-pinned certificates; this
// harness authenticates with an HMAC-SHA256 over the claimed identity under
// a session secret derived from the deployment seed and the group's
// self-certifying id. A connection is unidentified (and mute) until its
// hello verifies; the claimed id range then bounds every later claim the
// connection makes, exactly like NetDissent's machine-hosting check.
//
// Distributed scheduling (§3.10 over sockets): clients send their encrypted
// pseudonym-key submission to their upstream server (SchedSubmit); servers
// gossip their attached roster to every sibling (SchedRoster); each server,
// in index order, runs its verified mix and broadcasts the step (SchedMix);
// the final decrypted column is the slot order, which servers push to their
// attached client hosts (SchedKeys). Rows, steps, and keys travel as the
// key_shuffle.h / group codec byte forms, kept opaque here so this codec
// needs no group context.
#ifndef DISSENT_NET_NET_WIRE_H_
#define DISSENT_NET_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "src/util/bytes.h"

namespace dissent {
namespace net {

// HMAC-SHA256 (FIPS 198): standard ipad/opad construction over the repo's
// SHA-256. Key may be any length (hashed down if over one block).
Bytes HmacSha256(const Bytes& key, const Bytes& message);

// Session secret shared by every member of a deployment: all parties know
// the seed (it derives every long-term key in this harness), so it doubles
// as the channel-authentication key. group_id binds it to one roster.
Bytes SessionSecret(uint64_t seed, const Bytes& group_id);

struct Hello {
  enum Role : uint8_t { kServer = 0, kClientHost = 1 };
  uint8_t role = kServer;
  // Servers: first_id = server index, count = 1. Client hosts: the hosted
  // client range [first_id, first_id + count).
  uint32_t first_id = 0;
  uint32_t count = 0;
  uint64_t nonce = 0;
  Bytes mac;  // HMAC-SHA256(secret, "dissent-hello" || role || first_id || count || nonce)
};

// Builds a hello with a valid mac / verifies a received one.
Hello MakeHello(const Bytes& secret, uint8_t role, uint32_t first_id, uint32_t count,
                uint64_t nonce);
bool VerifyHello(const Bytes& secret, const Hello& hello);

struct SchedSubmit {
  uint32_t client_id = 0;
  Bytes row;  // SerializeCiphertextRow(group, {EncryptPseudonymKey(...)})
};

struct SchedRosterEntry {
  uint32_t client_id = 0;
  Bytes row;
};

struct SchedRoster {
  uint32_t server_id = 0;
  std::vector<SchedRosterEntry> entries;  // strictly increasing client_id
};

struct SchedMix {
  uint32_t server_id = 0;
  Bytes step;  // SerializeMixStep(group, step)
};

struct SchedKeys {
  std::vector<Bytes> keys;  // fixed-width group elements, slot order
};

using NetMessage = std::variant<Hello, SchedSubmit, SchedRoster, SchedMix, SchedKeys>;

Bytes SerializeNet(const NetMessage& msg);
// Hostile-hardened: bounds every count by the remaining input before
// allocating, requires canonical (fully consumed) encodings, and enforces
// the roster's strict client_id ordering.
std::optional<NetMessage> ParseNet(const Bytes& data);

// True when a framed payload should be parsed with this codec rather than
// the protocol codec (wire.h).
inline bool IsNetFrame(const Bytes& payload) {
  return !payload.empty() && payload[0] >= 0x80;
}

}  // namespace net
}  // namespace dissent

#endif  // DISSENT_NET_NET_WIRE_H_
