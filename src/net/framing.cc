#include "src/net/framing.h"

#include <cstring>

namespace dissent {
namespace net {

void AppendFrame(const Bytes& payload, Bytes* out) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out->push_back(static_cast<uint8_t>(len));
  out->push_back(static_cast<uint8_t>(len >> 8));
  out->push_back(static_cast<uint8_t>(len >> 16));
  out->push_back(static_cast<uint8_t>(len >> 24));
  out->insert(out->end(), payload.begin(), payload.end());
}

Bytes EncodeFrame(const Bytes& payload) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &out);
  return out;
}

bool FrameDecoder::Feed(const uint8_t* data, size_t len) {
  if (error_) {
    return false;
  }
  // Compact before growing: everything before pos_ has been handed out.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
  // Validate every complete length prefix eagerly so an oversized claim is
  // rejected before Next() would try to materialize it.
  size_t scan = pos_;
  while (buf_.size() - scan >= kFrameHeaderBytes) {
    uint32_t n;
    std::memcpy(&n, buf_.data() + scan, sizeof(n));
    if (n > max_frame_) {
      error_ = true;
      return false;
    }
    if (buf_.size() - scan - kFrameHeaderBytes < n) {
      break;  // incomplete frame; stop scanning
    }
    scan += kFrameHeaderBytes + n;
  }
  return true;
}

std::optional<Bytes> FrameDecoder::Next() {
  if (error_ || buf_.size() - pos_ < kFrameHeaderBytes) {
    return std::nullopt;
  }
  uint32_t n;
  std::memcpy(&n, buf_.data() + pos_, sizeof(n));
  if (buf_.size() - pos_ - kFrameHeaderBytes < n) {
    return std::nullopt;
  }
  const uint8_t* p = buf_.data() + pos_ + kFrameHeaderBytes;
  Bytes payload(p, p + n);
  pos_ += kFrameHeaderBytes + n;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return payload;
}

}  // namespace net
}  // namespace dissent
