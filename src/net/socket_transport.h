// Real-socket transport for the sans-I/O protocol engines.
//
// Third sibling of Coordinator (in-process) and NetDissent (simulated
// network): ServerNode and ClientHostNode own the engines and map every
// Envelope onto a length-prefixed TCP frame and every TimerRequest onto an
// EventLoop timer. No protocol sequencing lives here — the engines cannot
// disagree with the other transports on order, and the harness pins their
// cleartexts byte-identical per round.
//
// Topology (§3.5 over TCP):
//   * Server links are *directional*: each server dials every sibling and
//     sends only on its outbound connection; inbound connections carry the
//     sibling's frames. Two sockets per pair sidesteps simultaneous-connect
//     races, and loss across a redial is healed by the ReliableMailbox.
//   * A client host process (the machine-multiplexed N-clients-per-process
//     shape) keeps one bidirectional connection to its upstream server;
//     the server replies on the same socket. Hosts redial with backoff.
//   * Identity: a connection is mute until its HMAC hello verifies
//     (net_wire.h); the claimed id range then bounds every claimed client
//     id on that connection, mirroring NetDissent's machine-hosting check.
//
// Scheduling (§3.10) runs as a transport-level pre-engine phase over the
// same sockets: SchedSubmit -> SchedRoster gossip -> SchedMix cascade in
// server order (each step proof-verified as it applies) -> SchedKeys to the
// attached client hosts. Only after the cascade verifies does a server
// construct its engine and open round 1, so no engine ever sees a frame for
// a session that does not yet exist on its own side; frames from faster
// siblings that arrive before scheduling finishes locally are dropped and
// healed by the mailbox.
//
// Crash recovery: SnapshotBytes() captures the pseudonym keys plus the
// engine snapshot (PR 6); a new ServerNode restores with
// RestoreFromSnapshot *instead of* the scheduling phase and resumes
// byte-identically — dissentd wires this to SIGTERM + a state file.
#ifndef DISSENT_NET_SOCKET_TRANSPORT_H_
#define DISSENT_NET_SOCKET_TRANSPORT_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/core/engine.h"
#include "src/net/deployment.h"
#include "src/net/event_loop.h"
#include "src/net/framing.h"
#include "src/net/net_wire.h"

namespace dissent {
namespace net {

// One TCP connection: nonblocking reads through an incremental FrameDecoder,
// buffered writes with EPOLLOUT-driven backpressure, complete frames handed
// to on_frame in arrival order.
class Connection {
 public:
  using FrameHandler = std::function<void(Connection*, Bytes)>;
  using EventHandler = std::function<void(Connection*)>;

  // Wraps an accepted (already connected) fd.
  Connection(EventLoop* loop, int fd);
  // Dials host:port; on_connect fires when the connect completes (frames
  // queued before that are flushed then). A refused/failed dial reports
  // through on_close.
  Connection(EventLoop* loop, const std::string& host, uint16_t port);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_on_frame(FrameHandler h) { on_frame_ = std::move(h); }
  void set_on_close(EventHandler h) { on_close_ = std::move(h); }
  void set_on_connect(EventHandler h) { on_connect_ = std::move(h); }

  // Frames `payload` and queues it. SendFramed takes pre-framed bytes so a
  // broadcast buffers one shared buffer per recipient instead of copying.
  void Send(const Bytes& payload);
  void SendFramed(std::shared_ptr<const Bytes> framed);
  static std::shared_ptr<const Bytes> Frame(const Bytes& payload);

  void Close();  // idempotent; fires on_close once
  bool closed() const { return fd_ < 0; }
  size_t pending_bytes() const { return pending_bytes_; }
  // Bytes of a partially received frame (nonzero on a mid-frame close).
  size_t partial_frame_bytes() const { return decoder_.buffered(); }

  // Identity established by the hello handshake (owner-managed).
  // `greeted` is the *outbound* side: set once our own hello has been
  // queued, so no protocol frame can precede it on the wire. Frames the
  // owner suppresses while !greeted are healed by the reliable mailbox
  // (engine traffic) or SendSchedStateTo replay (scheduling).
  bool greeted = false;
  bool identified = false;
  uint8_t peer_role = 0;
  uint32_t first_id = 0;
  uint32_t id_count = 0;

 private:
  void Register(uint32_t events);
  void OnEvents(uint32_t events);
  void ReadAll();
  void FlushWrites();
  void UpdateWriteInterest();

  EventLoop* loop_;
  int fd_ = -1;
  bool connecting_ = false;
  bool want_write_ = false;
  FrameDecoder decoder_;
  std::deque<std::pair<std::shared_ptr<const Bytes>, size_t>> outq_;
  size_t pending_bytes_ = 0;
  // Guards deferred loop callbacks (async connect completion/failure)
  // against outliving the connection.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  FrameHandler on_frame_;
  EventHandler on_close_;
  EventHandler on_connect_;
};

// One dissent server over real sockets: accepts sibling and client-host
// connections, runs the scheduling phase, then drives a ServerEngine.
class ServerNode {
 public:
  ServerNode(EventLoop* loop, DeployConfig cfg, size_t index);
  ~ServerNode();

  // Binds and listens on cfg.server_port(index). False on bind failure.
  bool Listen();
  // Begins dialing siblings and (unless restored) collecting scheduling
  // submissions. Call after Listen and, when restoring, after
  // RestoreFromSnapshot.
  void Start();

  // --- crash recovery ---
  // Full durable state: pseudonym keys + engine snapshot. Empty until
  // scheduling has finished (there is no session to preserve yet).
  Bytes SnapshotBytes() const;
  // Rebuilds the session from a snapshot instead of running scheduling.
  bool RestoreFromSnapshot(const Bytes& snapshot);
  bool restored() const { return restored_; }

  // --- observability ---
  bool session_started() const { return engine_ != nullptr; }
  uint64_t rounds_completed() const;
  uint64_t retransmits() const;
  uint64_t pipelined_submissions() const;
  bool halted() const;
  // ReliableMailbox health (PR 8): first-time wraps, duplicate deliveries
  // shed, and the peak unacked backlog across all links.
  uint64_t reliable_sent() const;
  uint64_t duplicates_dropped() const;
  uint64_t max_in_flight() const;
  // Abort agreement / re-admission: certificate-retired rounds and rounds
  // re-applied from sibling history after a stale-snapshot restore.
  uint64_t rounds_aborted() const;
  uint64_t catch_up_rounds() const;
  // Wall-clock seconds from session start (or restore) to now/last round.
  double elapsed_seconds() const;
  // Per-round callback (round, RoundDone) — dissentd's cleartext log.
  std::function<void(const ServerEngine::RoundDone&)> on_round;
  // Fires once when rounds_completed() first reaches cfg.rounds.
  std::function<void()> on_target_rounds;

 private:
  void DialSibling(size_t j);
  void OnSiblingConnected(size_t j);
  Connection* AdoptInbound(int fd);
  void DropConnection(Connection* conn);
  void OnFrame(Connection* conn, Bytes payload);
  void OnNetMessage(Connection* conn, NetMessage msg);
  void OnWireMessage(Connection* conn, std::shared_ptr<const WireMessage> msg);
  void HandleHello(Connection* conn, const Hello& hello);

  // Scheduling phase.
  void MaybeBuildOwnRoster();
  void MaybeAssembleMatrix();
  void TryAdvanceCascade();
  void FinishScheduling(std::vector<BigInt> keys);
  void SendToSibling(size_t j, const Bytes& payload);
  void BroadcastToSiblings(const Bytes& payload);
  void SendSchedStateTo(size_t j);

  // Engine plumbing.
  void Dispatch(ServerEngine::Actions actions);
  void InstallEngine();
  ServerEngine::Config EngineConfig() const;

  EventLoop* loop_;
  DeployConfig cfg_;
  size_t index_;
  GroupDef def_;
  std::vector<BigInt> server_privs_;  // only [index_] is used for mixing
  BigInt priv_;
  Bytes secret_;
  std::vector<uint32_t> attached_;  // client ids attached to this server

  int listen_fd_ = -1;
  std::map<Connection*, std::unique_ptr<Connection>> conns_;
  std::vector<std::unique_ptr<Connection>> graveyard_;
  bool cleanup_scheduled_ = false;
  std::vector<Connection*> sibling_out_;   // outbound, index j (self null)
  std::vector<Connection*> sibling_in_;    // inbound identified as server j
  std::vector<int64_t> dial_backoff_us_;   // per-sibling redial backoff
  // Per-link jitter streams for the redial backoff, seeded from
  // (cfg.seed, self, sibling) and advanced once per retry: desynchronizes
  // reconnect storms deterministically (same seed -> same schedule).
  std::vector<uint64_t> dial_jitter_;
  std::map<uint32_t, Connection*> client_conn_;  // client id -> host conn
  std::set<Connection*> host_conns_;       // identified client-host conns

  // Scheduling state (inert when restored_).
  std::map<uint32_t, Bytes> sched_rows_;  // attached client -> submitted row
  std::vector<std::optional<SchedRoster>> rosters_;
  std::vector<std::optional<Bytes>> mix_steps_;  // serialized, per server
  CiphertextMatrix submissions_;   // merged, client-id order
  CiphertextMatrix cascade_;       // current matrix as steps apply
  std::vector<MixStep> verified_steps_;  // kept for verify_cascade
  size_t steps_applied_ = 0;
  bool own_roster_sent_ = false;
  bool own_step_sent_ = false;
  bool keys_ready_ = false;
  std::shared_ptr<const Bytes> sched_keys_frame_;  // framed SchedKeys

  std::unique_ptr<DissentServer> logic_;
  std::unique_ptr<ServerEngine> engine_;
  std::vector<BigInt> pseudonym_keys_;
  bool restored_ = false;
  int64_t session_start_us_ = 0;
  int64_t last_round_us_ = 0;
  bool target_reported_ = false;
  // Timer lambdas outlive `this` when a node is torn down mid-run (the
  // in-process crash/restore tests do exactly that); they bail through this.
  std::shared_ptr<bool> alive_guard_ = std::make_shared<bool>(true);
};

// One dissent-client process hosting cfg.host_num_clients(host) clients
// multiplexed over a single upstream connection.
class ClientHostNode {
 public:
  ClientHostNode(EventLoop* loop, DeployConfig cfg, size_t host_index);
  ~ClientHostNode();

  // Starts dialing the upstream server (redials with backoff forever).
  void Start();

  size_t first_client() const { return first_; }
  size_t num_clients() const { return count_; }
  // Hosted client `local` (0-based within this host) — the binary queues
  // application payloads here before Start().
  DissentClient& client_logic(size_t local) { return *logic_[local]; }
  bool slots_assigned() const { return slots_assigned_; }
  // Smallest contiguous output round every hosted engine has processed.
  uint64_t min_delivered_round() const;
  uint64_t retransmits() const;
  // Per-delivery callback (global client id, Delivery).
  std::function<void(size_t, const ClientEngine::Delivery&)> on_delivery;

 private:
  void Dial();
  void OnConnected();
  void OnClosed();
  void OnFrame(Bytes payload);
  void HandleSchedKeys(const SchedKeys& msg);
  void Dispatch(size_t local, ClientEngine::Actions actions);

  EventLoop* loop_;
  DeployConfig cfg_;
  size_t host_;
  size_t first_ = 0;
  size_t count_ = 0;
  size_t upstream_ = 0;
  GroupDef def_;
  Bytes secret_;

  std::unique_ptr<Connection> conn_;
  std::unique_ptr<Connection> dead_conn_;  // deferred destruction
  int64_t redial_backoff_us_ = 200 * 1000;
  uint64_t redial_jitter_ = 0;  // seeded per (cfg.seed, host, upstream)

  std::vector<std::unique_ptr<DissentClient>> logic_;
  std::vector<std::unique_ptr<ClientEngine>> engines_;
  // Cached scheduling submissions: the encryption randomness is drawn once
  // at construction, so a reconnect replays byte-identical rows.
  std::vector<Bytes> sched_rows_;
  bool slots_assigned_ = false;
  std::shared_ptr<bool> alive_guard_ = std::make_shared<bool>(true);
};

}  // namespace net
}  // namespace dissent

#endif  // DISSENT_NET_SOCKET_TRANSPORT_H_
