// Shared deployment parameters for the real-socket transport.
//
// A dissent deployment is fully determined by (seed, M servers, N clients,
// clients_per_host, pipeline depth): every process independently derives
// the same group roster, the same long-term keys, and the same per-node rng
// streams from the seed, so no key distribution step is needed for the
// localhost harness. This mirrors how the in-process drivers are seeded —
// and is the whole reason socket-transport cleartexts can be pinned
// byte-identical to them:
//
//   master = SecureRng::FromLabel(seed)
//   client logic rngs   = forks 0..N-1      (Coordinator/NetDissent order)
//   server logic rngs   = forks N..N+M-1    (ditto)
//   client sched rngs   = forks N+M..2N+M-1 (key-shuffle submissions)
//   server sched rngs   = forks 2N+M..2N+2M-1 (mix-step randomness)
//
// Any process re-derives exactly the forks it needs by skipping ahead from
// scratch (forks are cheap). The scheduling forks extend the in-process
// discipline: Coordinator/NetDissent draw scheduling randomness from the
// master stream *after* construction, which a distributed run cannot do, so
// the reference run instead computes the cascade with these per-node sched
// rngs and feeds the resulting key order back via RunSchedulingExternal /
// preset_pseudonym_keys.
//
// Topology: client host h serves clients [h*k, h*k+count) and attaches to
// server h % M — the same machine-major shape as NetDissent, so the two
// transports agree on attachment (cleartexts are invariant to attachment
// anyway, but window accounting is not).
#ifndef DISSENT_NET_DEPLOYMENT_H_
#define DISSENT_NET_DEPLOYMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/group_def.h"
#include "src/core/key_shuffle.h"

namespace dissent {
namespace net {

struct DeployConfig {
  uint64_t seed = 1;
  size_t num_servers = 2;
  size_t num_clients = 4;
  size_t clients_per_host = 1;
  size_t pipeline_depth = 1;
  // Rounds the run targets; each client queues this many payloads upfront
  // (DeployPayload) so every compared round carries deterministic data.
  size_t rounds = 10;
  std::string host = "127.0.0.1";
  // Server j listens on base_port + j.
  uint16_t base_port = 29000;
  // Fully verify the whole cascade on every server (each mix step is always
  // verified; this adds the end-to-end re-verification). O(M*N) exps — on
  // by default for small runs, off for the 100-process harness.
  bool verify_cascade = true;
  // TCP-tuned reliability (see ROADMAP delivery-assumptions): the kernel
  // retransmits within a connection, so the mailbox's job here is purely
  // cross-connection — frames lost to a crashed/restarted peer. A short rto
  // speeds crash recovery; it cannot cause spurious traffic on a healthy
  // link because acks return in well under any plausible rto on localhost.
  ReliabilityConfig reliability{true, 300 * 1000ll, 4 * 1000000ll};
  // Client stall detector (CatchUpRequest cadence) — the recovery path for
  // Output broadcasts lost across a server restart.
  int64_t resync_timeout_us = 500 * 1000ll;
  // Submission window: full participation (fraction 1.0, adaptive off) is
  // required for byte-identity with the lossless sim reference — a window
  // that closes early on wall-clock jitter would change participation and
  // thus the cleartext.
  double window_fraction = 1.0;
  double window_multiplier = 1.0;
  int64_t hard_deadline_us = 120 * 1000000ll;
  size_t evidence_rounds = 0;  // round path only; blame needs none retained
  size_t output_history = 256;
  // Abort agreement (PR 8): with a deadline, a round stuck past it is retired
  // by an epoch-committed AbortCommit certificate (all alive-server prepares)
  // and a server restored from a stale snapshot re-admits itself via the
  // catch-up protocol. 0 keeps aborts off entirely — the byte-identity runs
  // pin the frame stream against the PR 7 fixture with this disabled.
  int64_t abort_deadline_us = 0;
  // False selects the legacy one-shot RoundAbort vote (split-brain negative
  // control); only meaningful with a nonzero deadline.
  bool abort_agreement = true;
  // Chaos harness (PR 8): when nonzero, every dial goes through the
  // fault-injecting TCP proxy (chaos-proxy binary) instead of straight to the
  // peer's listen port. Each link gets its own proxy port so the proxy can
  // drop/stall/partition per link; the proxy forwards to base_port + target.
  uint16_t chaos_base_port = 0;

  size_t num_hosts() const {
    return (num_clients + clients_per_host - 1) / clients_per_host;
  }
  size_t host_first_client(size_t h) const { return h * clients_per_host; }
  size_t host_num_clients(size_t h) const {
    const size_t first = host_first_client(h);
    return first >= num_clients ? 0
                                : std::min(clients_per_host, num_clients - first);
  }
  size_t host_upstream(size_t h) const { return h % num_servers; }
  uint16_t server_port(size_t j) const {
    return static_cast<uint16_t>(base_port + j);
  }
  // Where server i dials to reach sibling j: direct, or the link's dedicated
  // chaos-proxy port (i*M + j within the proxy's sibling block).
  uint16_t sibling_dial_port(size_t i, size_t j) const {
    return chaos_base_port == 0
               ? server_port(j)
               : static_cast<uint16_t>(chaos_base_port + i * num_servers + j);
  }
  // Where a client host dials its upstream server: direct, or the shared
  // per-server proxy port after the M*M sibling block. Client links share one
  // proxy port per server — the chaos plans partition server links, and a
  // finer per-host split would need num_hosts ports for no test we run.
  uint16_t client_dial_port(size_t upstream) const {
    return chaos_base_port == 0
               ? server_port(upstream)
               : static_cast<uint16_t>(chaos_base_port + num_servers * num_servers +
                                       upstream);
  }
};

// The deterministic group every process derives from the seed. Out params
// may be null when a process only needs the roster.
GroupDef BuildDeployGroup(const DeployConfig& cfg, std::vector<BigInt>* server_privs,
                          std::vector<BigInt>* client_privs);

enum class DeployRngKind : uint8_t {
  kClientLogic = 0,
  kServerLogic = 1,
  kClientSched = 2,
  kServerSched = 3,
};
SecureRng DeployNodeRng(const DeployConfig& cfg, DeployRngKind kind, size_t index);

// Payload `k` (0-based) for client `i`: what the harness queues and what
// every log comparison expects to read back out of slot cleartexts.
Bytes DeployPayload(size_t client, size_t k);

// Reference-side cascade under the distributed rng discipline: submissions
// from the per-client sched rngs over `pseudonym_pubs`, one mix step per
// server from its sched rng. Returns the final pseudonym-key order (empty
// on verification failure). A socket deployment computes the identical
// cascade piecewise across its processes.
std::vector<BigInt> DistributedCascadeKeys(const DeployConfig& cfg, const GroupDef& def,
                                           const std::vector<BigInt>& server_privs,
                                           const std::vector<BigInt>& pseudonym_pubs);

// Runs the deployment's sim-transport reference (NetDissent over a lossless
// simulated network, preset with the DistributedCascadeKeys order) and
// returns the cleartexts of rounds 1..cfg.rounds. This is the byte-identity
// fixture for every socket-transport comparison.
std::vector<Bytes> RunSimReference(const DeployConfig& cfg);

}  // namespace net
}  // namespace dissent

#endif  // DISSENT_NET_DEPLOYMENT_H_
