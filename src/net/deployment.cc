#include "src/net/deployment.h"

#include <cstdio>

#include "src/core/client.h"
#include "src/core/net_protocol.h"
#include "src/sim/simulator.h"

namespace dissent {
namespace net {

GroupDef BuildDeployGroup(const DeployConfig& cfg, std::vector<BigInt>* server_privs,
                          std::vector<BigInt>* client_privs) {
  std::vector<BigInt> sp, cp;
  SecureRng rng = SecureRng::FromLabel(cfg.seed);
  GroupDef def = MakeTestGroup(Group::Named(GroupId::kTesting256), cfg.num_servers,
                               cfg.num_clients, rng, server_privs ? server_privs : &sp,
                               client_privs ? client_privs : &cp);
  return def;
}

SecureRng DeployNodeRng(const DeployConfig& cfg, DeployRngKind kind, size_t index) {
  const size_t n = cfg.num_clients;
  const size_t m = cfg.num_servers;
  size_t skip = 0;
  switch (kind) {
    case DeployRngKind::kClientLogic:
      skip = index;
      break;
    case DeployRngKind::kServerLogic:
      skip = n + index;
      break;
    case DeployRngKind::kClientSched:
      skip = n + m + index;
      break;
    case DeployRngKind::kServerSched:
      skip = n + m + n + index;
      break;
  }
  SecureRng master = SecureRng::FromLabel(cfg.seed);
  for (size_t i = 0; i < skip; ++i) {
    master.Fork();
  }
  return master.Fork();
}

Bytes DeployPayload(size_t client, size_t k) {
  char buf[64];
  const int len = std::snprintf(buf, sizeof(buf), "r%zu:c%zu", k, client);
  return Bytes(buf, buf + len);
}

std::vector<BigInt> DistributedCascadeKeys(const DeployConfig& cfg, const GroupDef& def,
                                           const std::vector<BigInt>& server_privs,
                                           const std::vector<BigInt>& pseudonym_pubs) {
  CiphertextMatrix current;
  current.reserve(pseudonym_pubs.size());
  for (size_t i = 0; i < pseudonym_pubs.size(); ++i) {
    SecureRng rng = DeployNodeRng(cfg, DeployRngKind::kClientSched, i);
    current.push_back(EncryptPseudonymKey(def, pseudonym_pubs[i], rng));
  }
  for (size_t j = 0; j < server_privs.size(); ++j) {
    SecureRng rng = DeployNodeRng(cfg, DeployRngKind::kServerSched, j);
    MixStep step = KeyShuffleMixStep(def, j, server_privs[j], current, rng);
    if (!VerifyMixStep(def, j, current, step)) {
      return {};
    }
    current = std::move(step.decrypted);
  }
  std::vector<BigInt> keys;
  keys.reserve(current.size());
  for (const auto& row : current) {
    keys.push_back(row[0].b);
  }
  return keys;
}

std::vector<Bytes> RunSimReference(const DeployConfig& cfg) {
  std::vector<BigInt> server_privs, client_privs;
  GroupDef def = BuildDeployGroup(cfg, &server_privs, &client_privs);

  // Pseudonyms are drawn in the DissentClient constructor from the client's
  // logic rng; throwaway clients over the same forks yield the exact keys
  // the transport-driven clients will use.
  std::vector<BigInt> pubs;
  pubs.reserve(cfg.num_clients);
  for (size_t i = 0; i < cfg.num_clients; ++i) {
    DissentClient tmp(def, i, client_privs[i],
                      DeployNodeRng(cfg, DeployRngKind::kClientLogic, i));
    pubs.push_back(tmp.pseudonym().pub);
  }
  std::vector<BigInt> keys = DistributedCascadeKeys(cfg, def, server_privs, pubs);
  if (keys.empty()) {
    return {};
  }

  Simulator sim;
  NetDissent::Options opt;
  opt.window_fraction = cfg.window_fraction;
  opt.window_multiplier = cfg.window_multiplier;
  opt.hard_deadline = cfg.hard_deadline_us;
  opt.adaptive_window = false;
  opt.pipeline_depth = cfg.pipeline_depth;
  opt.clients_per_machine = cfg.clients_per_host;
  opt.evidence_rounds = cfg.evidence_rounds;
  opt.output_history = cfg.output_history;
  opt.abort_deadline = cfg.abort_deadline_us;
  opt.abort_agreement = cfg.abort_agreement;
  opt.preset_pseudonym_keys = keys;
  NetDissent net(def, server_privs, client_privs, &sim, opt, cfg.seed);
  for (size_t i = 0; i < cfg.num_clients; ++i) {
    for (size_t k = 0; k < cfg.rounds; ++k) {
      net.client(i).QueueMessage(DeployPayload(i, k));
    }
  }
  if (!net.Start()) {
    return {};
  }
  while (net.rounds_completed() < cfg.rounds && sim.pending() > 0) {
    sim.Step();
  }
  std::vector<Bytes> cleartexts = net.round_cleartexts();
  if (cleartexts.size() > cfg.rounds) {
    cleartexts.resize(cfg.rounds);
  }
  return cleartexts;
}

}  // namespace net
}  // namespace dissent
