#include "src/sim/simulator.h"

#include <cassert>

namespace dissent {

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  assert(delay >= 0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const ref; move out via const_cast is UB-free
  // here because we pop immediately after copying the closure.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++events_executed_;
  ev.fn();
  return true;
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace dissent
