// Deterministic discrete-event simulator.
//
// This replaces the paper's physical testbeds (DeterLab, PlanetLab, Emulab,
// EC2 — §5). Time is int64 microseconds; events execute in strict
// (time, insertion-sequence) order, so identical seeds reproduce identical
// runs bit-for-bit.
#ifndef DISSENT_SIM_SIMULATOR_H_
#define DISSENT_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dissent {

using SimTime = int64_t;  // microseconds

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000000;

inline double ToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }
inline SimTime FromSeconds(double s) { return static_cast<SimTime>(s * kSecond); }

class Simulator {
 public:
  SimTime Now() const { return now_; }

  // Schedules fn at Now() + delay (delay >= 0).
  void Schedule(SimTime delay, std::function<void()> fn);
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs a single event; returns false when the queue is empty.
  bool Step();
  // Runs until the queue drains.
  void RunUntilIdle();
  // Runs events with time <= deadline (clock ends at deadline).
  void RunUntil(SimTime deadline);

  size_t pending() const { return queue_.size(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dissent

#endif  // DISSENT_SIM_SIMULATOR_H_
