// Client-behaviour models for the paper's testbeds.
//
// §5.1 measured client ciphertext-submission times on PlanetLab (500+ nodes,
// 8 EC2 servers, 24 h): most clients answer within a few hundred ms, a long
// tail of stragglers takes tens of seconds, and a small fraction never
// answers within the 120 s hard window. We model that distribution as a
// lognormal body + Pareto tail + dropout probability — the three features the
// window-closure policy analysis (Fig 6) is sensitive to.
#ifndef DISSENT_SIM_LATENCY_MODEL_H_
#define DISSENT_SIM_LATENCY_MODEL_H_

#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace dissent {

struct PlanetLabDelayModel {
  // Parameters back-solved from the §5.1 statistics: under the 95%+c window
  // policies the missed-client fractions must come out near 2.3% (c=1.1),
  // 1.5% (c=1.2) and 0.5% (c=2.0), and the wait-all baseline must hit the
  // 120 s hard deadline in ~15% of rounds with ~560 clients.
  // Body: lognormal, median ~exp(mu_log_ms) milliseconds.
  double mu_log_ms = 5.8;  // median ~330 ms
  double sigma_log = 0.3;
  // Tail: with probability tail_prob the draw is Pareto(tail_scale_ms, alpha).
  double tail_prob = 0.01;
  double tail_scale_ms = 800;
  double tail_alpha = 1.0;
  // Dropout: client never submits this round.
  double dropout_prob = 0.0002;

  // Returns submission delay in SimTime, or a negative value for "never".
  SimTime Draw(Rng& rng) const {
    if (rng.Bernoulli(dropout_prob)) {
      return -1;
    }
    double ms = rng.Bernoulli(tail_prob) ? rng.Pareto(tail_scale_ms, tail_alpha)
                                         : rng.LogNormal(mu_log_ms, sigma_log);
    return static_cast<SimTime>(ms * kMillisecond);
  }
};

// DeterLab-style fixed topology parameters (§5.2).
struct DeterlabTopology {
  double server_bandwidth_bps = 100e6 / 8;  // 100 Mbps shared server LAN
  SimTime server_latency = 10 * kMillisecond;
  double client_bandwidth_bps = 100e6 / 8;  // 100 Mbps client uplink
  SimTime client_latency = 50 * kMillisecond;
};

// Emulab WLAN parameters for the browsing experiments (§5.4).
struct WlanTopology {
  double bandwidth_bps = 24e6 / 8;  // 24 Mbps
  SimTime latency = 10 * kMillisecond;
};

// Simple exponential ON/OFF churn process (§3.6 robustness experiments).
struct ChurnModel {
  SimTime mean_online = 10 * 60 * kSecond;
  SimTime mean_offline = 60 * kSecond;

  SimTime DrawOnline(Rng& rng) const {
    return static_cast<SimTime>(rng.Exponential(static_cast<double>(mean_online)));
  }
  SimTime DrawOffline(Rng& rng) const {
    return static_cast<SimTime>(rng.Exponential(static_cast<double>(mean_offline)));
  }
};

}  // namespace dissent

#endif  // DISSENT_SIM_LATENCY_MODEL_H_
