#include "src/sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>

namespace dissent {

void Samples::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::Mean() const {
  assert(!values_.empty());
  return std::accumulate(values_.begin(), values_.end(), 0.0) / values_.size();
}

double Samples::Min() const {
  EnsureSorted();
  return values_.front();
}

double Samples::Max() const {
  EnsureSorted();
  return values_.back();
}

double Samples::Percentile(double q) const {
  assert(!values_.empty());
  EnsureSorted();
  if (q <= 0) {
    return values_.front();
  }
  if (q >= 1) {
    return values_.back();
  }
  size_t idx = static_cast<size_t>(q * values_.size());
  if (idx >= values_.size()) {
    idx = values_.size() - 1;
  }
  return values_[idx];
}

double Samples::CdfAt(double x) const {
  if (values_.empty()) {
    return 0;
  }
  EnsureSorted();
  auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) / values_.size();
}

void Samples::PrintCdf(const std::string& label, const std::vector<double>& probes) const {
  for (double p : probes) {
    std::printf("%s  p=%.2f  %.3f\n", label.c_str(), p, Percentile(p));
  }
}

}  // namespace dissent
