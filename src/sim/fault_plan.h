// Deterministic fault injection for the simulated network.
//
// A FaultPlan is a pure description: probabilities, windows, and a seed.
// The chaos layer inside sim::Network draws from one seeded Rng in frame
// send order, so the same plan against the same workload reproduces the
// identical fault trace bit-for-bit — a failing chaos run is replayable by
// seed alone. Crash/restart entries are enacted by the transport harness
// (the network cannot rebuild an engine from a snapshot); the network
// enforces everything frame-level: loss, duplication, reordering, byte
// corruption, and link partitions.
#ifndef DISSENT_SIM_FAULT_PLAN_H_
#define DISSENT_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/sim/simulator.h"

namespace dissent {
namespace sim {

struct FaultPlan {
  uint64_t seed = 0;

  // Per-frame probabilities, drawn independently at send time.
  double drop = 0.0;       // frame silently lost in flight
  double duplicate = 0.0;  // frame delivered a second time
  double reorder = 0.0;    // frame held back so later frames overtake it
  double corrupt = 0.0;    // one random byte of the frame flipped

  // Extra in-flight delay (uniform in (0, reorder_delay]) applied to
  // reordered frames; must exceed the link latency spread to actually
  // invert arrival order.
  SimTime reorder_delay = 20 * kMillisecond;

  // Frames between node groups [a_lo, a_hi] and [b_lo, b_hi] (inclusive,
  // both directions) are lost while from <= now < until.
  struct Partition {
    uint32_t a_lo = 0, a_hi = 0;
    uint32_t b_lo = 0, b_hi = 0;
    SimTime from = 0;
    SimTime until = 0;
  };
  std::vector<Partition> partitions;

  // Node crash/restart windows. The network treats a crashed node exactly
  // like an offline one (frames to/from it during [down_at, up_at) are
  // lost); the transport harness additionally tears the node's engine down
  // and rebuilds it from its last serialized snapshot at up_at.
  struct Crash {
    uint32_t node = 0;
    SimTime down_at = 0;
    SimTime up_at = 0;
  };
  std::vector<Crash> crashes;

  bool Active() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           !partitions.empty() || !crashes.empty();
  }
};

}  // namespace sim
}  // namespace dissent

#endif  // DISSENT_SIM_FAULT_PLAN_H_
