#include "src/sim/network.h"

#include <cassert>

namespace dissent {

NodeId Network::AddNode(DeliveryFn on_message) {
  NodeState st;
  st.on_message = std::move(on_message);
  nodes_.push_back(std::move(st));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::SetLink(NodeId from, NodeId to, LinkSpec spec) {
  links_[(static_cast<uint64_t>(from) << 32) | to] = spec;
}

void Network::SetUplink(NodeId node, LinkSpec spec) { nodes_[node].uplink = spec; }

void Network::SetOnline(NodeId node, bool online) { nodes_[node].online = online; }

const LinkSpec& Network::LinkFor(NodeId from, NodeId to) const {
  auto it = links_.find((static_cast<uint64_t>(from) << 32) | to);
  return it == links_.end() ? default_link_ : it->second;
}

void Network::Send(NodeId from, NodeId to, Frame payload) {
  assert(from < nodes_.size() && to < nodes_.size());
  assert(payload != nullptr);
  if (!nodes_[from].online) {
    ++messages_dropped_;  // dropped at send: sender offline
    return;
  }

  NodeState& src = nodes_[from];
  SimTime start = sim_->Now();
  // Shared-NIC uplink serialization: messages leave one at a time.
  if (src.uplink.bandwidth_bps > 0) {
    SimTime ser = src.uplink.SerializationDelay(payload->size());
    SimTime depart = std::max(start, src.uplink_busy_until) + ser;
    src.uplink_busy_until = depart;
    start = depart + src.uplink.latency;
  }
  // Per-link FIFO serialization: a link is one ordered byte stream (TCP
  // semantics), so a small frame sent right after a large one queues behind
  // it instead of overtaking — protocol messages on a connection arrive in
  // send order. An idle link behaves exactly as before (latency + own
  // serialization time).
  const LinkSpec& link = LinkFor(from, to);
  SimTime& link_busy = link_busy_[(static_cast<uint64_t>(from) << 32) | to];
  SimTime depart = std::max(start, link_busy) + link.SerializationDelay(payload->size());
  link_busy = depart;
  SimTime arrive = depart + link.latency;

  // The in-flight copy is one shared_ptr: a broadcast frame queued toward
  // thousands of destinations exists once, not once per destination.
  sim_->ScheduleAt(arrive, [this, from, to, p = std::move(payload)]() {
    NodeState& dst = nodes_[to];
    if (!dst.online || !dst.on_message) {
      ++messages_dropped_;  // dropped: receiver offline at delivery time
      return;
    }
    // Counted at delivery so silently-dropped traffic never skews the
    // bandwidth accounting.
    ++messages_sent_;
    bytes_sent_ += p->size();
    dst.on_message(from, p);
  });
}

}  // namespace dissent
