#include "src/sim/network.h"

#include <cassert>

namespace dissent {

NodeId Network::AddNode(DeliveryFn on_message) {
  NodeState st;
  st.on_message = std::move(on_message);
  nodes_.push_back(std::move(st));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::SetLink(NodeId from, NodeId to, LinkSpec spec) {
  links_[(static_cast<uint64_t>(from) << 32) | to] = spec;
}

void Network::SetUplink(NodeId node, LinkSpec spec) { nodes_[node].uplink = spec; }

void Network::SetOnline(NodeId node, bool online) { nodes_[node].online = online; }

void Network::SetFaultPlan(const sim::FaultPlan& plan) {
  fault_plan_ = plan;
  chaos_rng_ = Rng(plan.seed);
}

const LinkSpec& Network::LinkFor(NodeId from, NodeId to) const {
  auto it = links_.find((static_cast<uint64_t>(from) << 32) | to);
  return it == links_.end() ? default_link_ : it->second;
}

bool Network::Partitioned(NodeId from, NodeId to, SimTime now) const {
  if (!fault_plan_) {
    return false;
  }
  for (const auto& p : fault_plan_->partitions) {
    if (now < p.from || now >= p.until) {
      continue;
    }
    const bool from_a = from >= p.a_lo && from <= p.a_hi;
    const bool from_b = from >= p.b_lo && from <= p.b_hi;
    const bool to_a = to >= p.a_lo && to <= p.a_hi;
    const bool to_b = to >= p.b_lo && to <= p.b_hi;
    if ((from_a && to_b) || (from_b && to_a)) {
      return true;
    }
  }
  return false;
}

void Network::Deliver(NodeId from, NodeId to, SimTime arrive, Frame payload) {
  // The in-flight copy is one shared_ptr: a broadcast frame queued toward
  // thousands of destinations exists once, not once per destination.
  sim_->ScheduleAt(arrive, [this, from, to, p = std::move(payload)]() {
    NodeState& dst = nodes_[to];
    if (!dst.online || !dst.on_message) {
      ++messages_dropped_;  // dropped: receiver offline at delivery time
      return;
    }
    // Counted at delivery so silently-dropped traffic never skews the
    // bandwidth accounting.
    ++messages_sent_;
    bytes_sent_ += p->size();
    dst.on_message(from, p);
  });
}

void Network::Send(NodeId from, NodeId to, Frame payload) {
  assert(from < nodes_.size() && to < nodes_.size());
  assert(payload != nullptr);
  if (!nodes_[from].online) {
    ++messages_dropped_;  // dropped at send: sender offline
    return;
  }

  NodeState& src = nodes_[from];
  SimTime start = sim_->Now();
  // Shared-NIC uplink serialization: messages leave one at a time.
  if (src.uplink.bandwidth_bps > 0) {
    SimTime ser = src.uplink.SerializationDelay(payload->size());
    SimTime depart = std::max(start, src.uplink_busy_until) + ser;
    src.uplink_busy_until = depart;
    start = depart + src.uplink.latency;
  }
  // Per-link FIFO serialization: a link is one ordered byte stream (TCP
  // semantics), so a small frame sent right after a large one queues behind
  // it instead of overtaking — protocol messages on a connection arrive in
  // send order. An idle link behaves exactly as before (latency + own
  // serialization time).
  const LinkSpec& link = LinkFor(from, to);
  SimTime& link_busy = link_busy_[(static_cast<uint64_t>(from) << 32) | to];
  SimTime depart = std::max(start, link_busy) + link.SerializationDelay(payload->size());
  link_busy = depart;
  SimTime arrive = depart + link.latency;

  // Chaos layer. Decisions are drawn in a fixed order from one seeded Rng
  // consumed in Send-call order (itself deterministic under the simulator's
  // strict event ordering), so a FaultPlan replays the identical fault
  // trace bit-for-bit. The FIFO horizon above is charged before chaos:
  // lost frames still occupied the wire, and a reordered frame is held in
  // a queue after the link rather than stretching the link itself.
  if (fault_plan_ && fault_plan_->Active()) {
    const sim::FaultPlan& fp = *fault_plan_;
    if (Partitioned(from, to, sim_->Now())) {
      ++messages_lost_;
      return;
    }
    if (fp.drop > 0 && chaos_rng_.Bernoulli(fp.drop)) {
      ++messages_lost_;
      return;
    }
    if (fp.corrupt > 0 && chaos_rng_.Bernoulli(fp.corrupt) && !payload->empty()) {
      auto mutated = std::make_shared<Bytes>(*payload);
      size_t at = chaos_rng_.Below(mutated->size());
      (*mutated)[at] ^= static_cast<uint8_t>(1 + chaos_rng_.Below(255));
      payload = std::move(mutated);
      ++messages_corrupted_;
    }
    if (fp.duplicate > 0 && chaos_rng_.Bernoulli(fp.duplicate)) {
      SimTime extra = 1 + static_cast<SimTime>(
                              chaos_rng_.Below(static_cast<uint64_t>(fp.reorder_delay)));
      Deliver(from, to, arrive + extra, payload);
      ++messages_duplicated_;
    }
    if (fp.reorder > 0 && chaos_rng_.Bernoulli(fp.reorder)) {
      arrive += 1 + static_cast<SimTime>(
                        chaos_rng_.Below(static_cast<uint64_t>(fp.reorder_delay)));
      ++messages_reordered_;
    }
  }

  Deliver(from, to, arrive, std::move(payload));
}

}  // namespace dissent
