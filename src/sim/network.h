// Simulated message network: nodes, directional links with latency and
// bandwidth (FIFO serialization queues), online/offline state.
//
// Payloads are ref-counted frames (`Frame = shared_ptr<const Bytes>`): a
// broadcast of one serialized protocol message to many destinations carries
// a single heap copy of the bytes no matter how many deliveries are in
// flight, and receivers can use the frame pointer as an identity key to
// parse each distinct frame exactly once. Serialization/latency accounting
// is unchanged — every delivery still pays its full wire cost; only the
// simulator's resident memory and CPU stop scaling with fan-out.
//
// Topologies used by the benches mirror the paper's §5 testbeds:
//  * DeterLab: servers on a shared 100 Mbps / 10 ms mesh; client machines on
//    100 Mbps / 50 ms uplinks to their upstream server.
//  * PlanetLab-like: heavy-tailed client delays + dropouts (latency_model.h).
//  * Emulab WLAN: every node 24 Mbps / 10 ms to a switch (§5.4).
#ifndef DISSENT_SIM_NETWORK_H_
#define DISSENT_SIM_NETWORK_H_

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/sim/fault_plan.h"
#include "src/sim/simulator.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace dissent {

using NodeId = uint32_t;

struct LinkSpec {
  SimTime latency = 0;
  // Bytes per second; 0 means infinite (no serialization delay).
  double bandwidth_bps = 0;

  SimTime SerializationDelay(size_t bytes) const {
    if (bandwidth_bps <= 0) {
      return 0;
    }
    return static_cast<SimTime>(static_cast<double>(bytes) / bandwidth_bps * kSecond);
  }
};

class Network {
 public:
  explicit Network(Simulator* sim) : sim_(sim) {}

  // Ref-counted serialized frame. Deliveries of one broadcast share the same
  // underlying Bytes object; `frame.get()` is a stable identity for the
  // frame's lifetime (receivers key parse caches on it).
  using Frame = std::shared_ptr<const Bytes>;
  using DeliveryFn = std::function<void(NodeId from, const Frame& payload)>;

  NodeId AddNode(DeliveryFn on_message);
  size_t node_count() const { return nodes_.size(); }

  // Directional link override; unset pairs use the default link.
  void SetLink(NodeId from, NodeId to, LinkSpec spec);
  void SetDefaultLink(LinkSpec spec) { default_link_ = spec; }
  // Per-node uplink/downlink shared serialization (models one NIC rather
  // than per-destination capacity). Disabled when bandwidth is 0.
  void SetUplink(NodeId node, LinkSpec spec);

  void SetOnline(NodeId node, bool online);
  bool IsOnline(NodeId node) const { return nodes_[node].online; }

  // Queues the message; delivery happens after uplink serialization + link
  // latency. Messages to/from offline nodes are dropped silently (the sender
  // cannot tell — exactly the failure mode §3.6 is designed around). The
  // Frame overload shares the payload with the caller (no copy); the Bytes
  // overload wraps the buffer for single-destination convenience.
  void Send(NodeId from, NodeId to, Frame payload);
  void Send(NodeId from, NodeId to, Bytes payload) {
    Send(from, to, std::make_shared<const Bytes>(std::move(payload)));
  }

  // Installs the chaos layer: frames sent while the plan is active may be
  // dropped, duplicated, reordered, or corrupted, and partition windows
  // sever node groups. All draws come from one Rng seeded with plan.seed,
  // consumed in send order, so a plan replays bit-for-bit.
  void SetFaultPlan(const sim::FaultPlan& plan);
  const sim::FaultPlan* fault_plan() const { return fault_plan_ ? &*fault_plan_ : nullptr; }

  // Delivered traffic only: messages silently dropped because either
  // endpoint was offline are counted in messages_dropped() instead, so
  // bandwidth reports (Fig 9) reflect bytes that actually crossed the wire.
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  // Injected-fault accounting, separate from the incidental offline drops
  // above so benches can report injected vs incidental loss.
  uint64_t messages_lost() const { return messages_lost_; }
  uint64_t messages_duplicated() const { return messages_duplicated_; }
  uint64_t messages_corrupted() const { return messages_corrupted_; }
  uint64_t messages_reordered() const { return messages_reordered_; }

 private:
  struct NodeState {
    DeliveryFn on_message;
    bool online = true;
    LinkSpec uplink;              // bandwidth 0 => unlimited
    SimTime uplink_busy_until = 0;
  };

  const LinkSpec& LinkFor(NodeId from, NodeId to) const;
  bool Partitioned(NodeId from, NodeId to, SimTime now) const;
  void Deliver(NodeId from, NodeId to, SimTime arrive, Frame payload);

  Simulator* sim_;
  std::vector<NodeState> nodes_;
  LinkSpec default_link_;
  std::unordered_map<uint64_t, LinkSpec> links_;  // key = from << 32 | to
  // FIFO serialization horizon per directed link (key as above): frames on
  // one link never reorder, exactly like messages on a TCP connection.
  std::unordered_map<uint64_t, SimTime> link_busy_;
  std::optional<sim::FaultPlan> fault_plan_;
  Rng chaos_rng_{0};
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t messages_lost_ = 0;
  uint64_t messages_duplicated_ = 0;
  uint64_t messages_corrupted_ = 0;
  uint64_t messages_reordered_ = 0;
};

}  // namespace dissent

#endif  // DISSENT_SIM_NETWORK_H_
