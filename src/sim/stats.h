// Small statistics helpers for the benchmark harnesses: percentiles, CDFs,
// and formatted series output matching the paper's figures.
#ifndef DISSENT_SIM_STATS_H_
#define DISSENT_SIM_STATS_H_

#include <string>
#include <vector>

namespace dissent {

class Samples {
 public:
  void Add(double v) { values_.push_back(v); }
  size_t Count() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  // q in [0, 1]; nearest-rank on the sorted data.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }

  // Fraction of samples <= x.
  double CdfAt(double x) const;

  // Prints "p  value" rows for a CDF plot (Figs 6 and 11 are CDFs).
  void PrintCdf(const std::string& label, const std::vector<double>& probes) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace dissent

#endif  // DISSENT_SIM_STATS_H_
