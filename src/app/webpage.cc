#include "src/app/webpage.h"

#include <algorithm>
#include <cmath>

namespace dissent {

size_t WebPage::TotalBytes() const {
  size_t total = index_bytes;
  for (size_t a : asset_bytes) {
    total += a;
  }
  return total;
}

std::vector<WebPage> MakeAlexaCorpus(size_t count, uint64_t seed) {
  // 2012-era page-weight statistics (HTTP Archive): mean total ~1 MB,
  // 30-100 requests per page, asset sizes lognormal with a long image tail.
  Rng rng(seed);
  std::vector<WebPage> corpus;
  corpus.reserve(count);
  for (size_t p = 0; p < count; ++p) {
    WebPage page;
    page.index_bytes = static_cast<size_t>(rng.LogNormal(std::log(45e3), 0.7));
    int assets = static_cast<int>(rng.Uniform(15, 70));
    for (int a = 0; a < assets; ++a) {
      double bytes = rng.LogNormal(std::log(12e3), 1.1);
      page.asset_bytes.push_back(static_cast<size_t>(std::min(bytes, 400e3)));
    }
    corpus.push_back(std::move(page));
  }
  return corpus;
}

double DownloadSeconds(const WebPage& page, const ChannelSpec& channel) {
  // Index fetch gates everything.
  double t = channel.rtt_sec + channel.per_request_sec +
             static_cast<double>(page.index_bytes) / channel.bandwidth_bps;
  // Assets fetched in waves of `concurrency`; the channel bandwidth is
  // shared, so payload time is total bytes / bandwidth, while request
  // round-trips amortize across each wave.
  size_t assets = page.asset_bytes.size();
  if (assets > 0) {
    size_t waves = (assets + channel.concurrency - 1) / channel.concurrency;
    double payload_bytes = 0;
    for (size_t a : page.asset_bytes) {
      payload_bytes += static_cast<double>(a);
    }
    t += static_cast<double>(waves) * (channel.rtt_sec + channel.per_request_sec);
    t += payload_bytes / channel.bandwidth_bps;
  }
  return t;
}

ChannelSpec DirectChannel() {
  // 24 Mbps WLAN to the public internet: sustained per-site throughput and
  // server response times of the era dominate, not the local link.
  return ChannelSpec{.rtt_sec = 0.30, .bandwidth_bps = 160e3, .concurrency = 6,
                     .per_request_sec = 0.05};
}

ChannelSpec TorChannel() {
  // Public Tor circa 2012: ~50-90 KB/s sustained circuit throughput and
  // ~1 s request round trips through three volunteer relays.
  return ChannelSpec{.rtt_sec = 1.2, .bandwidth_bps = 42e3, .concurrency = 6,
                     .per_request_sec = 0.2};
}

ChannelSpec DissentLanChannel(double round_sec, size_t slot_payload_bytes) {
  ChannelSpec c;
  // A request needs a round to go out and a round for the first response
  // bytes to come back.
  c.rtt_sec = 2.0 * round_sec;
  // Goodput: tunnel frames, SOCKS headers, TCP-in-tunnel control traffic and
  // upstream requests share the same slot as the downstream payload, so the
  // web-visible throughput is well under raw slot capacity.
  constexpr double kGoodput = 0.6;
  c.bandwidth_bps = kGoodput * static_cast<double>(slot_payload_bytes) / round_sec;
  // The tunnel multiplexes flows into one slot: waves are wide.
  c.concurrency = 8;
  c.per_request_sec = 0.0;
  return c;
}

ChannelSpec ComposeChannels(const ChannelSpec& inner, const ChannelSpec& outer) {
  ChannelSpec c;
  c.rtt_sec = inner.rtt_sec + outer.rtt_sec;
  c.bandwidth_bps = std::min(inner.bandwidth_bps, outer.bandwidth_bps);
  c.concurrency = std::min(inner.concurrency, outer.concurrency);
  c.per_request_sec = inner.per_request_sec + outer.per_request_sec;
  return c;
}

}  // namespace dissent
