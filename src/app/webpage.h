// Synthetic "Alexa Top 100" web corpus and the page-fetch model (§5.4).
//
// The paper downloaded the index pages (plus dependent assets) of the Alexa
// Top 100 through four network configurations. We replace the 2012 web with
// a seeded synthetic corpus whose page weight and asset-count distributions
// match that era (~1 MB mean page, tens of assets), and a fetch model
// (HTML first, then `concurrency` parallel asset fetches) over a Channel
// abstraction that each configuration instantiates.
#ifndef DISSENT_APP_WEBPAGE_H_
#define DISSENT_APP_WEBPAGE_H_

#include <cstddef>
#include <vector>

#include "src/util/rng.h"

namespace dissent {

struct WebPage {
  size_t index_bytes = 0;
  std::vector<size_t> asset_bytes;

  size_t TotalBytes() const;
};

std::vector<WebPage> MakeAlexaCorpus(size_t count, uint64_t seed);

// A channel is what a page fetch sees end to end.
struct ChannelSpec {
  double rtt_sec = 0.1;          // request/response round trip
  double bandwidth_bps = 1e6;    // sustained payload bytes/sec
  size_t concurrency = 6;        // parallel asset fetches
  double per_request_sec = 0.0;  // fixed extra cost per request (handshakes)
};

// Time to fetch one page: index first (its parse gates the assets), then
// assets in concurrency-sized waves sharing the channel bandwidth.
double DownloadSeconds(const WebPage& page, const ChannelSpec& channel);

// The four §5.4 configurations. Dissent channels derive their throughput
// and round-trip from the DC-net round model on the WLAN topology; `tor`
// reflects 2012-era public-Tor performance.
ChannelSpec DirectChannel();
ChannelSpec TorChannel();
// round_sec: DC-net round time; slot_payload_bytes: usable bytes per round.
ChannelSpec DissentLanChannel(double round_sec, size_t slot_payload_bytes);
ChannelSpec ComposeChannels(const ChannelSpec& inner, const ChannelSpec& outer);

}  // namespace dissent

#endif  // DISSENT_APP_WEBPAGE_H_
