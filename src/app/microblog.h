// Anonymous microblogging workload (§4.2): in each round a random 1% of
// clients post short messages. Drives a Coordinator and tracks delivery, so
// examples and tests share one implementation of the paper's workload.
#ifndef DISSENT_APP_MICROBLOG_H_
#define DISSENT_APP_MICROBLOG_H_

#include <string>
#include <vector>

#include "src/core/coordinator.h"
#include "src/util/rng.h"

namespace dissent {

class MicroblogWorkload {
 public:
  MicroblogWorkload(Coordinator* coord, double post_fraction, size_t post_bytes,
                    uint64_t seed);

  struct RoundReport {
    uint64_t round = 0;
    size_t queued = 0;     // posts injected this round
    size_t delivered = 0;  // posts read back from the round output
    std::vector<std::string> posts;
  };
  // Queues this round's posts, runs the round, and reads back the feed.
  RoundReport Step();

  size_t total_posted() const { return total_posted_; }
  size_t total_delivered() const { return total_delivered_; }

 private:
  Coordinator* coord_;
  double post_fraction_;
  size_t post_bytes_;
  Rng rng_;
  uint64_t next_post_id_ = 0;
  size_t total_posted_ = 0;
  size_t total_delivered_ = 0;
};

}  // namespace dissent

#endif  // DISSENT_APP_MICROBLOG_H_
