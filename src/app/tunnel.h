// SOCKS-style flow tunneling over Dissent rounds (§4.1).
//
// User applications hand TCP/UDP-like flows to an entry node, which assigns
// each flow a random identifier, prepends destination headers, and packs
// frames into the client's anonymous message slot. A (non-anonymous) exit
// node unpacks frames, talks to the destination, and sends responses back
// through the session addressed by flow id.
#ifndef DISSENT_APP_TUNNEL_H_
#define DISSENT_APP_TUNNEL_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace dissent {

struct TunnelFrame {
  enum class Type : uint8_t { kOpen = 1, kData = 2, kClose = 3 };
  Type type = Type::kData;
  uint32_t flow_id = 0;
  std::string destination;  // host:port, only on kOpen
  Bytes data;
};

// Frames are concatenated into one slot payload.
Bytes EncodeFrames(const std::vector<TunnelFrame>& frames);
std::optional<std::vector<TunnelFrame>> DecodeFrames(const Bytes& payload);

// The exit node: tracks open flows and forwards data to destinations via a
// pluggable responder (real deployments would open sockets; tests and
// examples plug in a synthetic web server).
class TunnelExit {
 public:
  // responder(destination, request_bytes) -> response_bytes.
  using Responder = std::function<Bytes(const std::string&, const Bytes&)>;

  explicit TunnelExit(Responder responder) : responder_(std::move(responder)) {}

  // Processes frames arriving from the anonymity session; returns response
  // frames to send back through it.
  std::vector<TunnelFrame> Process(const std::vector<TunnelFrame>& frames);

  size_t open_flows() const { return destinations_.size(); }

 private:
  Responder responder_;
  std::map<uint32_t, std::string> destinations_;
};

}  // namespace dissent

#endif  // DISSENT_APP_TUNNEL_H_
