#include "src/app/send_policy.h"

#include <algorithm>

namespace dissent {

SendPolicy::SendPolicy(size_t min_participation, size_t required_healthy_streak,
                       std::set<uint32_t> buddies)
    : min_participation_(min_participation),
      required_streak_(std::max<size_t>(required_healthy_streak, 1)),
      buddies_(std::move(buddies)) {}

void SendPolicy::ObserveRound(const std::vector<uint32_t>& participants) {
  last_participation_ = participants.size();
  buddies_present_ = std::all_of(buddies_.begin(), buddies_.end(), [&](uint32_t b) {
    return std::find(participants.begin(), participants.end(), b) != participants.end();
  });
  bool healthy = last_participation_ >= min_participation_ && buddies_present_;
  streak_ = healthy ? streak_ + 1 : 0;
}

bool SendPolicy::SafeToTransmit() const { return streak_ >= required_streak_; }

}  // namespace dissent
