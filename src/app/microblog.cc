#include "src/app/microblog.h"

namespace dissent {

MicroblogWorkload::MicroblogWorkload(Coordinator* coord, double post_fraction,
                                     size_t post_bytes, uint64_t seed)
    : coord_(coord), post_fraction_(post_fraction), post_bytes_(post_bytes), rng_(seed) {}


MicroblogWorkload::RoundReport MicroblogWorkload::Step() {
  RoundReport report;
  const size_t n = coord_->def().num_clients();
  for (size_t i = 0; i < n; ++i) {
    if (!coord_->IsClientOnline(i) || coord_->expelled_clients().count(i) != 0) {
      continue;
    }
    if (rng_.Bernoulli(post_fraction_)) {
      std::string text = "post#" + std::to_string(next_post_id_++) + " ";
      text.resize(post_bytes_, 'x');
      coord_->client(i).QueueMessage(BytesOf(text));
      ++report.queued;
      ++total_posted_;
    }
  }
  auto outcome = coord_->RunRound();
  report.round = outcome.round;
  for (auto& [slot, payload] : outcome.messages) {
    report.posts.push_back(StringOf(payload));
    ++report.delivered;
    ++total_delivered_;
  }
  return report;
}

}  // namespace dissent
