// User-side transmission safety policies (§3.7, §3.11).
//
// The servers publish a participation count for every completed round; a
// user who judges it too low keeps sending null ciphertexts ("strength in
// numbers", §3.7). Because counts are published only for *past* rounds, the
// policy also insists on a streak of healthy rounds before releasing a
// sensitive message — the α threshold (enforced server-side) bounds how much
// participation can silently collapse between the observation and the send.
//
// The buddy system (§3.11) mitigates long-term intersection attacks for
// users who transmit *linkably* (e.g. under a pseudonym): transmit only when
// every member of a fixed buddy set is among the participants, so the
// adversary's intersection always contains the whole buddy set.
#ifndef DISSENT_APP_SEND_POLICY_H_
#define DISSENT_APP_SEND_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

namespace dissent {

class SendPolicy {
 public:
  SendPolicy(size_t min_participation, size_t required_healthy_streak,
             std::set<uint32_t> buddies);

  // Feed each completed round's participant list (from the signed output /
  // server-published counts).
  void ObserveRound(const std::vector<uint32_t>& participants);

  // True when the policy would release a sensitive message next round.
  bool SafeToTransmit() const;

  // Diagnostics.
  size_t healthy_streak() const { return streak_; }
  bool buddies_all_present() const { return buddies_present_; }
  size_t last_participation() const { return last_participation_; }

 private:
  size_t min_participation_;
  size_t required_streak_;
  std::set<uint32_t> buddies_;
  size_t streak_ = 0;
  bool buddies_present_ = false;
  size_t last_participation_ = 0;
};

}  // namespace dissent

#endif  // DISSENT_APP_SEND_POLICY_H_
