#include "src/app/tunnel.h"

#include <algorithm>

#include "src/util/serialize.h"

namespace dissent {

Bytes EncodeFrames(const std::vector<TunnelFrame>& frames) {
  Writer w;
  w.U32(static_cast<uint32_t>(frames.size()));
  for (const TunnelFrame& f : frames) {
    w.U8(static_cast<uint8_t>(f.type));
    w.U32(f.flow_id);
    w.Str(f.destination);
    w.Blob(f.data);
  }
  return w.Take();
}

std::optional<std::vector<TunnelFrame>> DecodeFrames(const Bytes& payload) {
  Reader r(payload);
  uint32_t count;
  if (!r.U32(&count)) {
    return std::nullopt;
  }
  std::vector<TunnelFrame> frames;
  // `count` is attacker-controlled; each frame needs >= 10 wire bytes, so cap
  // the reservation by what the payload could actually hold.
  frames.reserve(std::min<size_t>(count, payload.size() / 10 + 1));
  for (uint32_t i = 0; i < count; ++i) {
    TunnelFrame f;
    uint8_t type;
    if (!r.U8(&type) || type < 1 || type > 3) {
      return std::nullopt;
    }
    f.type = static_cast<TunnelFrame::Type>(type);
    if (!r.U32(&f.flow_id) || !r.Str(&f.destination) || !r.Blob(&f.data)) {
      return std::nullopt;
    }
    frames.push_back(std::move(f));
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return frames;
}

std::vector<TunnelFrame> TunnelExit::Process(const std::vector<TunnelFrame>& frames) {
  std::vector<TunnelFrame> responses;
  for (const TunnelFrame& f : frames) {
    switch (f.type) {
      case TunnelFrame::Type::kOpen:
        destinations_[f.flow_id] = f.destination;
        break;
      case TunnelFrame::Type::kClose:
        destinations_.erase(f.flow_id);
        break;
      case TunnelFrame::Type::kData: {
        auto it = destinations_.find(f.flow_id);
        if (it == destinations_.end()) {
          break;  // data for an unopened flow: drop
        }
        TunnelFrame resp;
        resp.type = TunnelFrame::Type::kData;
        resp.flow_id = f.flow_id;
        resp.data = responder_(it->second, f.data);
        responses.push_back(std::move(resp));
        break;
      }
    }
  }
  return responses;
}

}  // namespace dissent
