// Figure 9 (§5.3): wall-clock time for a whole protocol run — key shuffle,
// one DC-net exchange, the accusation (blame) shuffle, and blame evaluation —
// vs group size, with 24 servers and 128-byte messages.
//
// Unlike Figs 6-8 this executes the REAL implementation end to end: Neff
// shuffle cascades with proof verification, ElGamal layer peeling with DLEQ
// proofs, DC-net byte planes, witness-bit detection, the accusation shuffle
// and PRNG-bit tracing. Absolute times differ from the paper (their 2012
// testbed, CryptoPP, larger keys; our single machine, 256-bit test group),
// but the orderings the paper emphasizes hold: DC-net rounds are negligible;
// the key shuffle is far cheaper than the general (blame) message shuffle;
// and shuffle costs grow superlinearly with group size.
//
// Since the blame flow became an engine sub-phase (PR 4), the accusation
// shuffle runs exactly as deployed: all 24 server instances execute in this
// process, and EVERY server verifies every mix step (M*(M-1) verifications,
// where the pre-engine driver ran one representative cascade verification).
// The blame columns therefore aggregate the whole fleet's work — divide by
// the server count for the per-machine wall time a real (parallel)
// deployment would see. That also makes large sweeps expensive, so the
// default stops at 24 clients; set DISSENT_FIG9_MAX_CLIENTS to extend
// (the 1000-client point runs the full 24-verifier workload and takes on
// the order of an hour of proof generation/verification).
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/core/coordinator.h"

namespace dissent {
namespace {

double Secs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct PhaseTimes {
  double key_shuffle = 0;
  double dcnet_round = 0;
  double blame_shuffle = 0;
  double blame_eval = 0;
};

PhaseTimes RunOnce(size_t num_clients, size_t num_servers) {
  SecureRng rng = SecureRng::FromLabel(9000 + num_clients);
  std::vector<BigInt> server_privs, client_privs;
  GroupDef def = MakeTestGroup(Group::Named(GroupId::kTesting256), num_servers, num_clients,
                               rng, &server_privs, &client_privs);
  Coordinator coord(def, server_privs, client_privs, 90 + num_clients);

  PhaseTimes t;
  auto t0 = std::chrono::steady_clock::now();
  bool ok = coord.RunScheduling();
  t.key_shuffle = Secs(t0);
  if (!ok) {
    std::fprintf(stderr, "scheduling failed\n");
    std::exit(1);
  }

  // 1% of clients (at least one) send 128-byte messages.
  size_t senders = std::max<size_t>(1, num_clients / 100);
  for (size_t i = 0; i < senders; ++i) {
    coord.client(i * (num_clients / senders)).QueueMessage(Bytes(128, 0x61));
  }
  coord.RunRound();  // request-bit round (not what Fig 9 times)
  t0 = std::chrono::steady_clock::now();
  auto round = coord.RunRound();  // the measured DC-net exchange
  t.dcnet_round = Secs(t0);
  if (!round.completed) {
    std::fprintf(stderr, "round failed\n");
    std::exit(1);
  }

  // Provoke a disruption so a genuine accusation flows through the blame
  // machinery (victim = client 0's slot, disruptor = last client).
  size_t victim = 0;
  size_t slot = *coord.client(victim).slot();
  for (int attempt = 0; attempt < 24 && !coord.client(victim).HasPendingAccusation();
       ++attempt) {
    if (coord.client(victim).PendingMessages() == 0) {
      coord.client(victim).QueueMessage(Bytes(128, 0x62));
    }
    const SlotSchedule& sched = coord.server(0).schedule();
    if (sched.is_open(slot)) {
      coord.InjectDisruptor(num_clients - 1, (sched.SlotOffset(slot) + 20) * 8 + attempt % 8);
    } else {
      coord.ClearDisruptor();
    }
    coord.RunRound();
  }
  coord.ClearDisruptor();

  auto outcome = coord.RunAccusationPhase();
  t.blame_shuffle = outcome.shuffle_seconds;
  t.blame_eval = outcome.trace_seconds;
  if (!outcome.expelled_client.has_value()) {
    std::fprintf(stderr, "warning: disruptor not expelled (witness-bit coin flips)\n");
  }
  return t;
}

void Run() {
  size_t max_clients = 24;
  if (const char* env = std::getenv("DISSENT_FIG9_MAX_CLIENTS")) {
    max_clients = static_cast<size_t>(std::atoll(env));
  }
  const size_t sweep[] = {24, 100, 500, 1000};
  constexpr size_t kServers = 24;

  std::printf("=== Figure 9: whole protocol run, 24 servers, 128 B messages ===\n");
  std::printf("(real crypto, 256-bit test group; seconds of wall clock.\n");
  std::printf(" blame columns aggregate all %zu in-process server instances —\n", kServers);
  std::printf(" divide by %zu for the per-machine time of a parallel deployment)\n\n", kServers);
  std::printf("%8s %14s %14s %14s %14s\n", "clients", "key-shuffle", "dcnet-round",
              "blame-shuffle", "blame-eval");
  for (size_t n : sweep) {
    if (n > max_clients) {
      std::printf("%8zu  (skipped; set DISSENT_FIG9_MAX_CLIENTS=%zu to include)\n", n, n);
      continue;
    }
    PhaseTimes t = RunOnce(n, kServers);
    std::printf("%8zu %14.3f %14.4f %14.3f %14.4f\n", n, t.key_shuffle, t.dcnet_round,
                t.blame_shuffle, t.blame_eval);
  }
  std::printf("\npaper-vs-measured (shape checks):\n");
  std::printf("  * DC-net exchange is a negligible fraction of the whole run\n");
  std::printf("  * blame (general message) shuffle >> key shuffle at every size (§3.10)\n");
  std::printf("  * shuffle time grows superlinearly with clients; blame eval stays small\n");
}

}  // namespace
}  // namespace dissent

int main() {
  dissent::Run();
  return 0;
}
