// Figure 6 (§5.1): CDF of message-exchange completion time under four window
// closure policies, on a PlanetLab-like trace (560 clients, 8 servers).
//
// Paper's reference points:
//  * baseline (wait-all / 120 s): 50% of rounds delayed >= 10x vs early-close
//    policies; 15% of rounds hit the 120 s hard deadline;
//  * fraction of clients missing the window: 1.1x -> 2.3%, 1.2x -> 1.5%,
//    2x -> 0.5%.
#include <cstdio>

#include "src/sim/stats.h"
#include "src/simmodel/round_model.h"

namespace dissent {
namespace {

struct PolicyDef {
  const char* name;
  bool wait_for_all;
  double multiplier;
};

void Run() {
  constexpr size_t kClients = 560;
  constexpr size_t kServers = 8;
  constexpr int kRounds = 1200;  // ~24h at one exchange per 72s

  const PolicyDef policies[] = {
      {"wait-all/120s", true, 0.0},
      {"95%+1.1x", false, 1.1},
      {"95%+1.2x", false, 1.2},
      {"95%+2.0x", false, 2.0},
  };

  Calibration cal = Calibration::Measure();
  std::printf("=== Figure 6: window closure policies (PlanetLab model) ===\n");
  std::printf("clients=%zu servers=%zu rounds=%d\n\n", kClients, kServers, kRounds);

  Samples exchange[4];
  double missed_frac[4] = {0, 0, 0, 0};
  size_t deadline_hits[4] = {0, 0, 0, 0};
  // One shared delay trace per round so policies are compared like-for-like.
  Rng rng(20120601);
  PlanetLabDelayModel model;
  for (int r = 0; r < kRounds; ++r) {
    std::vector<double> delays(kClients);
    size_t will_submit = 0;
    for (size_t i = 0; i < kClients; ++i) {
      SimTime d = model.Draw(rng);
      delays[i] = d < 0 ? -1.0 : ToSeconds(d);
      will_submit += d >= 0 ? 1 : 0;
    }
    for (int p = 0; p < 4; ++p) {
      WindowOutcome w = ApplyWindowPolicy(delays, 0.95, policies[p].multiplier, 120.0,
                                          policies[p].wait_for_all);
      // Exchange completion = window close + (small) server-side pipeline.
      RoundConfig cfg;
      cfg.num_clients = kClients;
      cfg.num_servers = kServers;
      cfg.cleartext_bytes = MicroblogCleartextBytes(kClients);
      cfg.topology = TopologyKind::kPlanetlab;
      Rng sub(1);  // server side is deterministic given participants
      RoundTimes t = SimulateRound(cfg, cal, sub);
      exchange[p].Add(w.close_sec + t.server_processing_sec);
      if (will_submit > 0) {
        missed_frac[p] += static_cast<double>(w.missed) / will_submit;
      }
      if (w.close_sec >= 120.0) {
        deadline_hits[p]++;
      }
    }
  }

  std::printf("%-15s %8s %8s %8s %8s %8s  %12s %12s\n", "policy", "p10", "p50", "p90", "p99",
              "max", "missed%", "hit-120s%");
  for (int p = 0; p < 4; ++p) {
    std::printf("%-15s %8.2f %8.2f %8.2f %8.2f %8.2f  %11.2f%% %11.1f%%\n", policies[p].name,
                exchange[p].Percentile(0.10), exchange[p].Median(),
                exchange[p].Percentile(0.90), exchange[p].Percentile(0.99), exchange[p].Max(),
                100.0 * missed_frac[p] / kRounds, 100.0 * deadline_hits[p] / kRounds);
  }

  std::printf("\nCDF (exchange completion seconds):\n");
  std::printf("%-8s", "p");
  for (const auto& pd : policies) {
    std::printf(" %14s", pd.name);
  }
  std::printf("\n");
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0}) {
    std::printf("%-8.2f", q);
    for (auto& s : exchange) {
      std::printf(" %14.2f", s.Percentile(q));
    }
    std::printf("\n");
  }

  double slow_ratio = exchange[0].Median() / exchange[1].Median();
  std::printf("\npaper-vs-measured:\n");
  std::printf("  median wait-all / median 95%%+1.1x: %.1fx   (paper: >= 10x for 50%% of rounds)\n",
              slow_ratio);
  std::printf("  wait-all rounds at 120s deadline:   %.1f%%  (paper: ~15%%)\n",
              100.0 * deadline_hits[0] / kRounds);
  std::printf("  missed clients 1.1x/1.2x/2.0x:      %.1f%% / %.1f%% / %.1f%%"
              "  (paper: 2.3%% / 1.5%% / 0.5%%)\n",
              100.0 * missed_frac[1] / kRounds, 100.0 * missed_frac[2] / kRounds,
              100.0 * missed_frac[3] / kRounds);
}

}  // namespace
}  // namespace dissent

int main() {
  dissent::Run();
  return 0;
}
