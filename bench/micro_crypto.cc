// google-benchmark microbenchmarks of the crypto substrate — these numbers
// feed the calibration story behind the Fig 6-8 performance model.
#include <benchmark/benchmark.h>

#include "src/core/dcnet.h"
#include "src/crypto/group.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/crypto/shuffle.h"
#include "src/crypto/dh.h"

namespace dissent {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_DcnetPad(benchmark::State& state) {
  Bytes key(32, 0x42);
  Bytes buf(static_cast<size_t>(state.range(0)), 0);
  uint64_t round = 0;
  for (auto _ : state) {
    XorDcnetPad(key, ++round, buf);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DcnetPad)->Arg(1024)->Arg(128 * 1024)->Arg(1 << 20);

void BM_XorCombine(benchmark::State& state) {
  Bytes a(static_cast<size_t>(state.range(0)), 1);
  Bytes b(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    XorInto(a, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XorCombine)->Arg(1024)->Arg(128 * 1024)->Arg(1 << 20);

GroupId GroupForBits(int64_t bits) {
  switch (bits) {
    case 256:
      return GroupId::kTesting256;
    case 512:
      return GroupId::kMedium512;
    case 1024:
      return GroupId::kProduction1024;
    default:
      return GroupId::kProduction2048;
  }
}

void BM_ModExp(benchmark::State& state) {
  auto g = Group::Named(GroupForBits(state.range(0)));
  SecureRng rng = SecureRng::FromLabel(1);
  BigInt base = g->GExp(g->RandomScalar(rng));
  BigInt e = g->RandomScalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->Exp(base, e));
  }
}
BENCHMARK(BM_ModExp)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_SchnorrSign(benchmark::State& state) {
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(2);
  SchnorrKeyPair kp = SchnorrKeyPair::Generate(*g, rng);
  Bytes msg(64, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchnorrSign(*g, kp.priv, msg, rng));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(3);
  SchnorrKeyPair kp = SchnorrKeyPair::Generate(*g, rng);
  Bytes msg(64, 7);
  SchnorrSignature sig = SchnorrSign(*g, kp.priv, msg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchnorrVerify(*g, kp.pub, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_ShuffleProve(benchmark::State& state) {
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(4);
  DhKeyPair key = DhKeyPair::Generate(*g, rng);
  const size_t k = static_cast<size_t>(state.range(0));
  CiphertextMatrix inputs(k);
  for (size_t i = 0; i < k; ++i) {
    inputs[i] = {ElGamalEncrypt(*g, key.pub, g->GExp(g->RandomScalar(rng)), rng)};
  }
  ShuffleResult shuffled = ApplyRandomShuffle(*g, key.pub, inputs, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ShuffleProve(*g, key.pub, inputs, shuffled.outputs, shuffled.witness, rng));
  }
}
BENCHMARK(BM_ShuffleProve)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_ShuffleVerify(benchmark::State& state) {
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(5);
  DhKeyPair key = DhKeyPair::Generate(*g, rng);
  const size_t k = static_cast<size_t>(state.range(0));
  CiphertextMatrix inputs(k);
  for (size_t i = 0; i < k; ++i) {
    inputs[i] = {ElGamalEncrypt(*g, key.pub, g->GExp(g->RandomScalar(rng)), rng)};
  }
  ShuffleResult shuffled = ApplyRandomShuffle(*g, key.pub, inputs, rng);
  ShuffleProof proof =
      ShuffleProve(*g, key.pub, inputs, shuffled.outputs, shuffled.witness, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShuffleVerify(*g, key.pub, inputs, shuffled.outputs, proof));
  }
}
BENCHMARK(BM_ShuffleVerify)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dissent

BENCHMARK_MAIN();
