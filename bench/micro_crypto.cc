// google-benchmark microbenchmarks of the crypto substrate — these numbers
// feed the calibration story behind the Fig 6-8 performance model.
//
// BM_KeyShuffleCascade is the PR 5 acceptance benchmark: the full verified
// key-shuffle cascade (prove + decrypt + verify across a 5-server mix) at up
// to 1,000 clients, on the multi-exponentiation engine (arg 1 = 1) vs the
// pre-PR generic Montgomery::Exp path (arg 1 = 0). CI guards engine >= 4x
// reference on (prove + verify) at 1,000 clients.
#include <benchmark/benchmark.h>

#include <chrono>

#include "src/core/dcnet.h"
#include "src/core/group_def.h"
#include "src/core/key_shuffle.h"
#include "src/crypto/group.h"
#include "src/crypto/multiexp.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/crypto/shuffle.h"
#include "src/crypto/dh.h"

namespace dissent {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_DcnetPad(benchmark::State& state) {
  Bytes key(32, 0x42);
  Bytes buf(static_cast<size_t>(state.range(0)), 0);
  uint64_t round = 0;
  for (auto _ : state) {
    XorDcnetPad(key, ++round, buf);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DcnetPad)->Arg(1024)->Arg(128 * 1024)->Arg(1 << 20);

void BM_XorCombine(benchmark::State& state) {
  Bytes a(static_cast<size_t>(state.range(0)), 1);
  Bytes b(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    XorInto(a, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XorCombine)->Arg(1024)->Arg(128 * 1024)->Arg(1 << 20);

GroupId GroupForBits(int64_t bits) {
  switch (bits) {
    case 256:
      return GroupId::kTesting256;
    case 512:
      return GroupId::kMedium512;
    case 1024:
      return GroupId::kProduction1024;
    default:
      return GroupId::kProduction2048;
  }
}

void BM_ModExp(benchmark::State& state) {
  auto g = Group::Named(GroupForBits(state.range(0)));
  SecureRng rng = SecureRng::FromLabel(1);
  BigInt base = g->GExp(g->RandomScalar(rng));
  BigInt e = g->RandomScalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->Exp(base, e));
  }
}
BENCHMARK(BM_ModExp)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_GExpFixedBase(benchmark::State& state) {
  // Fixed-base comb (engine) vs generic ladder (reference) for g^e.
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(21);
  BigInt e = g->RandomScalar(rng);
  ScopedCryptoFastPath scoped(state.range(0) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->GExp(e));
  }
}
BENCHMARK(BM_GExpFixedBase)->Arg(0)->Arg(1);

void BM_ExpSecretConstTime(benchmark::State& state) {
  // Constant-time-lookup window exponentiation (secret-exponent path).
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(22);
  BigInt base = g->GExp(g->RandomScalar(rng));
  BigInt e = g->RandomScalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->ExpSecret(base, e));
  }
}
BENCHMARK(BM_ExpSecretConstTime);

void BM_MultiExp(benchmark::State& state) {
  // prod b_i^{e_i} over n bases: engine (Straus/Pippenger, arg 1 = 1) vs the
  // pre-PR shape (n independent ladders + products, arg 1 = 0).
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(23);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<BigInt> bases(n), exps(n);
  for (size_t i = 0; i < n; ++i) {
    bases[i] = g->GExp(g->RandomScalar(rng));
    exps[i] = g->RandomScalar(rng);
  }
  const bool engine = state.range(1) == 1;
  for (auto _ : state) {
    if (engine) {
      benchmark::DoNotOptimize(MultiExp(*g, bases, exps));
    } else {
      BigInt acc = g->Identity();
      for (size_t i = 0; i < n; ++i) {
        acc = g->MulElems(acc, g->Exp(bases[i], exps[i]));
      }
      benchmark::DoNotOptimize(acc);
    }
  }
  state.counters["bases_per_sec"] =
      benchmark::Counter(static_cast<double>(n) * state.iterations(),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MultiExp)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_KeyShuffleCascade(benchmark::State& state) {
  // Full §3.10 cascade at paper scale: args {clients, engine?}.
  const size_t clients = static_cast<size_t>(state.range(0));
  const bool engine = state.range(1) == 1;
  ScopedCryptoFastPath scoped(engine);
  SecureRng rng = SecureRng::FromLabel(31000 + clients);
  std::vector<BigInt> server_privs, client_privs;
  GroupDef def = MakeTestGroup(Group::Named(GroupId::kTesting256), 5, clients, rng,
                               &server_privs, &client_privs);
  CiphertextMatrix submissions;
  for (size_t i = 0; i < clients; ++i) {
    SchnorrKeyPair kp = SchnorrKeyPair::Generate(*def.group, rng);
    submissions.push_back(EncryptPseudonymKey(def, kp.pub, rng));
  }
  double prove_sec = 0;
  double verify_sec = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    ShuffleCascadeResult cascade = RunShuffleCascade(def, server_privs, submissions, rng);
    auto t1 = std::chrono::steady_clock::now();
    bool ok = VerifyShuffleCascade(def, submissions, cascade);
    auto t2 = std::chrono::steady_clock::now();
    if (!ok) {
      state.SkipWithError("cascade verification failed");
      return;
    }
    prove_sec += std::chrono::duration<double>(t1 - t0).count();
    verify_sec += std::chrono::duration<double>(t2 - t1).count();
  }
  const double iters = static_cast<double>(state.iterations());
  if (iters > 0) {
    state.counters["prove_sec"] = prove_sec / iters;
    state.counters["verify_sec"] = verify_sec / iters;
    state.counters["total_sec"] = (prove_sec + verify_sec) / iters;
  }
}
BENCHMARK(BM_KeyShuffleCascade)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Iterations(1)
    ->Unit(benchmark::kSecond)
    ->UseRealTime();

void BM_SchnorrMultiVerify(benchmark::State& state) {
  // Output-certificate batch check: one MultiExp relation over all shares.
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(24);
  const size_t n = static_cast<size_t>(state.range(0));
  Bytes msg(64, 7);
  std::vector<BigInt> pubs(n);
  std::vector<SchnorrSignature> sigs(n);
  for (size_t i = 0; i < n; ++i) {
    SchnorrKeyPair kp = SchnorrKeyPair::Generate(*g, rng);
    pubs[i] = kp.pub;
    sigs[i] = SchnorrSign(*g, kp.priv, msg, rng);
  }
  ScopedCryptoFastPath scoped(state.range(1) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchnorrMultiVerify(*g, pubs, msg, sigs));
  }
}
BENCHMARK(BM_SchnorrMultiVerify)->Args({5, 0})->Args({5, 1})->Args({32, 0})->Args({32, 1});

void BM_SchnorrSign(benchmark::State& state) {
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(2);
  SchnorrKeyPair kp = SchnorrKeyPair::Generate(*g, rng);
  Bytes msg(64, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchnorrSign(*g, kp.priv, msg, rng));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(3);
  SchnorrKeyPair kp = SchnorrKeyPair::Generate(*g, rng);
  Bytes msg(64, 7);
  SchnorrSignature sig = SchnorrSign(*g, kp.priv, msg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchnorrVerify(*g, kp.pub, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_ShuffleProve(benchmark::State& state) {
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(4);
  DhKeyPair key = DhKeyPair::Generate(*g, rng);
  const size_t k = static_cast<size_t>(state.range(0));
  CiphertextMatrix inputs(k);
  for (size_t i = 0; i < k; ++i) {
    inputs[i] = {ElGamalEncrypt(*g, key.pub, g->GExp(g->RandomScalar(rng)), rng)};
  }
  ShuffleResult shuffled = ApplyRandomShuffle(*g, key.pub, inputs, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ShuffleProve(*g, key.pub, inputs, shuffled.outputs, shuffled.witness, rng));
  }
}
BENCHMARK(BM_ShuffleProve)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_ShuffleVerify(benchmark::State& state) {
  auto g = Group::Named(GroupId::kTesting256);
  SecureRng rng = SecureRng::FromLabel(5);
  DhKeyPair key = DhKeyPair::Generate(*g, rng);
  const size_t k = static_cast<size_t>(state.range(0));
  CiphertextMatrix inputs(k);
  for (size_t i = 0; i < k; ++i) {
    inputs[i] = {ElGamalEncrypt(*g, key.pub, g->GExp(g->RandomScalar(rng)), rng)};
  }
  ShuffleResult shuffled = ApplyRandomShuffle(*g, key.pub, inputs, rng);
  ShuffleProof proof =
      ShuffleProve(*g, key.pub, inputs, shuffled.outputs, shuffled.witness, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShuffleVerify(*g, key.pub, inputs, shuffled.outputs, proof));
  }
}
BENCHMARK(BM_ShuffleVerify)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dissent

BENCHMARK_MAIN();
