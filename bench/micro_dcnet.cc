// google-benchmark microbenchmarks of the DC-net round pipeline itself:
// client ciphertext formation and the server-side combine at various group
// shapes — the per-round data-plane costs behind Figs 7-8.
#include <benchmark/benchmark.h>

#include "src/core/coordinator.h"
#include "src/core/dcnet.h"

namespace dissent {
namespace {

void BM_ClientCiphertext(benchmark::State& state) {
  const size_t servers = static_cast<size_t>(state.range(0));
  const size_t len = static_cast<size_t>(state.range(1));
  std::vector<Bytes> keys(servers, Bytes(32, 0x11));
  Bytes cleartext(len, 0);
  uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildClientCiphertext(keys, ++round, cleartext));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(servers * len));
}
BENCHMARK(BM_ClientCiphertext)
    ->Args({4, 1024})
    ->Args({16, 1024})
    ->Args({32, 1024})
    ->Args({16, 128 * 1024});

void BM_ServerPadAggregation(benchmark::State& state) {
  // One server expanding + XORing pads for N participating clients.
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t len = static_cast<size_t>(state.range(1));
  std::vector<Bytes> keys(clients);
  for (size_t i = 0; i < clients; ++i) {
    keys[i].assign(32, static_cast<uint8_t>(i));
  }
  Bytes acc(len, 0);
  uint64_t round = 0;
  for (auto _ : state) {
    ++round;
    for (const auto& k : keys) {
      XorDcnetPad(k, round, acc);
    }
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(clients * len));
}
BENCHMARK(BM_ServerPadAggregation)
    ->Args({100, 1024})
    ->Args({1000, 1024})
    ->Args({100, 128 * 1024})
    ->Unit(benchmark::kMillisecond);

void BM_FullRoundInProcess(benchmark::State& state) {
  // A complete real round (Algorithms 1+2, signatures included) through the
  // in-process coordinator.
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t servers = static_cast<size_t>(state.range(1));
  SecureRng rng = SecureRng::FromLabel(42);
  std::vector<BigInt> server_privs, client_privs;
  GroupDef def = MakeTestGroup(Group::Named(GroupId::kTesting256), servers, clients, rng,
                               &server_privs, &client_privs);
  Coordinator coord(def, server_privs, client_privs, 42);
  if (!coord.RunScheduling()) {
    state.SkipWithError("scheduling failed");
    return;
  }
  size_t sender = 0;
  for (auto _ : state) {
    coord.client(sender % clients).QueueMessage(Bytes(128, 0x33));
    ++sender;
    auto outcome = coord.RunRound();
    benchmark::DoNotOptimize(outcome.completed);
  }
}
BENCHMARK(BM_FullRoundInProcess)
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({64, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dissent

BENCHMARK_MAIN();
