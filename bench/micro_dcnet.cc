// google-benchmark microbenchmarks of the DC-net round pipeline itself:
// client ciphertext formation and the server-side combine at various group
// shapes — the per-round data-plane costs behind Figs 7-8.
#include <benchmark/benchmark.h>

#include "src/core/coordinator.h"
#include "src/core/dcnet.h"

namespace dissent {
namespace {

void BM_ClientCiphertext(benchmark::State& state) {
  const size_t servers = static_cast<size_t>(state.range(0));
  const size_t len = static_cast<size_t>(state.range(1));
  std::vector<Bytes> keys(servers, Bytes(32, 0x11));
  Bytes cleartext(len, 0);
  uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildClientCiphertext(keys, ++round, cleartext));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(servers * len));
}
BENCHMARK(BM_ClientCiphertext)
    ->Args({4, 1024})
    ->Args({16, 1024})
    ->Args({32, 1024})
    ->Args({16, 128 * 1024});

void BM_ServerPadAggregation(benchmark::State& state) {
  // One server expanding + XORing pads for N participating clients.
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t len = static_cast<size_t>(state.range(1));
  std::vector<Bytes> keys(clients);
  for (size_t i = 0; i < clients; ++i) {
    keys[i].assign(32, static_cast<uint8_t>(i));
  }
  Bytes acc(len, 0);
  uint64_t round = 0;
  for (auto _ : state) {
    ++round;
    for (const auto& k : keys) {
      XorDcnetPad(k, round, acc);
    }
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(clients * len));
}
BENCHMARK(BM_ServerPadAggregation)
    ->Args({100, 1024})
    ->Args({1000, 1024})
    ->Args({100, 128 * 1024})
    ->Unit(benchmark::kMillisecond);

void BM_ClientCiphertextCached(benchmark::State& state) {
  // The real per-round client cost: key schedules parsed once (as
  // DissentClient does), pads XORed into the cleartext in place.
  const size_t servers = static_cast<size_t>(state.range(0));
  const size_t len = static_cast<size_t>(state.range(1));
  std::vector<Bytes> keys(servers, Bytes(32, 0x11));
  PadExpander expander(keys);
  Bytes buf(len, 0);
  uint64_t round = 0;
  for (auto _ : state) {
    expander.XorAllPads(++round, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(servers * len));
}
BENCHMARK(BM_ClientCiphertextCached)->Args({16, 1024})->Args({16, 128 * 1024});

void BM_PadExpanderAggregation(benchmark::State& state) {
  // Server-side aggregation through the precomputed-schedule expander:
  // clients x len x worker threads. The 10k-client case is the paper's
  // target operating point (Fig 7-8) at a 128 KiB round cleartext.
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t len = static_cast<size_t>(state.range(1));
  const size_t threads = static_cast<size_t>(state.range(2));
  std::vector<Bytes> keys(clients);
  for (size_t i = 0; i < clients; ++i) {
    keys[i].assign(32, static_cast<uint8_t>(i * 7 + 1));
  }
  PadExpander expander(keys);
  Bytes acc(len, 0);
  uint64_t round = 0;
  for (auto _ : state) {
    expander.XorAllPads(++round, acc, threads);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(clients * len));
}
BENCHMARK(BM_PadExpanderAggregation)
    ->Args({100, 128 * 1024, 1})
    ->Args({1000, 128 * 1024, 1})
    ->Args({1000, 128 * 1024, 4})
    ->Args({10000, 128 * 1024, 1})
    ->Args({10000, 128 * 1024, 8})
    // Wall clock, not main-thread CPU time: the pad expansion happens on
    // worker threads in the multi-threaded cases.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_PadBitQuery(benchmark::State& state) {
  // Accusation tracing (§3.9): one pad bit at a deep offset; O(1) via Seek.
  Bytes key(32, 0x42);
  const size_t bit = static_cast<size_t>(state.range(0));
  uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DcnetPadBit(key, ++round, bit));
  }
}
BENCHMARK(BM_PadBitQuery)->Arg(7)->Arg(8 * 128 * 1024 - 1);

void BM_FullRoundInProcess(benchmark::State& state) {
  // A complete real round (Algorithms 1+2, signatures included) through the
  // in-process coordinator.
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t servers = static_cast<size_t>(state.range(1));
  SecureRng rng = SecureRng::FromLabel(42);
  std::vector<BigInt> server_privs, client_privs;
  GroupDef def = MakeTestGroup(Group::Named(GroupId::kTesting256), servers, clients, rng,
                               &server_privs, &client_privs);
  Coordinator coord(def, server_privs, client_privs, 42);
  if (!coord.RunScheduling()) {
    state.SkipWithError("scheduling failed");
    return;
  }
  size_t sender = 0;
  for (auto _ : state) {
    coord.client(sender % clients).QueueMessage(Bytes(128, 0x33));
    ++sender;
    auto outcome = coord.RunRound();
    benchmark::DoNotOptimize(outcome.completed);
  }
}
BENCHMARK(BM_FullRoundInProcess)
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({64, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dissent

BENCHMARK_MAIN();
