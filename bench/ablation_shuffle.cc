// Ablation B (§3.10): key shuffles vs general message shuffles, and group
// size sensitivity. The paper's design discussion argues key shuffles are
// cheaper because entries are already group elements (no message embedding,
// width 1) and can use smaller groups; this bench quantifies both effects on
// the real shuffle implementation.
#include <chrono>
#include <cstdio>

#include "src/core/group_def.h"
#include "src/core/key_shuffle.h"
#include "src/crypto/multiexp.h"
#include "src/crypto/schnorr.h"

namespace dissent {
namespace {

double Secs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Cost {
  double prove_sec;
  double verify_sec;
};

Cost MeasureCascade(GroupId gid, size_t clients, size_t servers, size_t payload_bytes) {
  SecureRng rng = SecureRng::FromLabel(11000 + clients + payload_bytes);
  std::vector<BigInt> server_privs, client_privs;
  GroupDef def =
      MakeTestGroup(Group::Named(gid), servers, clients, rng, &server_privs, &client_privs);

  CiphertextMatrix submissions;
  if (payload_bytes == 0) {
    // Key shuffle: submissions are pseudonym keys (width 1, no embedding).
    for (size_t i = 0; i < clients; ++i) {
      SchnorrKeyPair kp = SchnorrKeyPair::Generate(*def.group, rng);
      submissions.push_back(EncryptPseudonymKey(def, kp.pub, rng));
    }
  } else {
    size_t width = MessageBlockWidth(def, payload_bytes);
    for (size_t i = 0; i < clients; ++i) {
      auto row = EncryptMessageBlocks(def, Bytes(payload_bytes, 0x5a), width, rng);
      submissions.push_back(*row);
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  ShuffleCascadeResult cascade = RunShuffleCascade(def, server_privs, submissions, rng);
  double prove = Secs(t0);
  t0 = std::chrono::steady_clock::now();
  bool ok = VerifyShuffleCascade(def, submissions, cascade);
  double verify = Secs(t0);
  if (!ok) {
    std::fprintf(stderr, "cascade verification failed!\n");
    std::exit(1);
  }
  return {prove, verify};
}

void Run() {
  constexpr size_t kServers = 4;
  std::printf("=== Ablation: key shuffle vs general message shuffle ===\n");
  std::printf("(%zu-server cascade, prove+decrypt / verify seconds)\n\n", kServers);

  std::printf("-- width effect (256-bit group): key (width 1) vs 160 B message --\n");
  std::printf("%8s | %12s %12s | %12s %12s | %7s\n", "clients", "key prove", "key verify",
              "msg prove", "msg verify", "ratio");
  for (size_t k : {8, 16, 32, 64, 128}) {
    Cost key = MeasureCascade(GroupId::kTesting256, k, kServers, 0);
    Cost msg = MeasureCascade(GroupId::kTesting256, k, kServers, 160);
    std::printf("%8zu | %12.3f %12.3f | %12.3f %12.3f | %6.1fx\n", k, key.prove_sec,
                key.verify_sec, msg.prove_sec, msg.verify_sec,
                (msg.prove_sec + msg.verify_sec) / (key.prove_sec + key.verify_sec));
  }

  std::printf("\n-- multi-exp engine vs pre-PR generic exponentiation (key shuffle) --\n");
  std::printf("%8s | %12s %12s | %12s %12s | %7s\n", "clients", "eng prove", "eng verify",
              "ref prove", "ref verify", "speedup");
  for (size_t k : {16, 64, 256}) {
    Cost eng, ref;
    {
      ScopedCryptoFastPath scoped(true);
      eng = MeasureCascade(GroupId::kTesting256, k, kServers, 0);
    }
    {
      ScopedCryptoFastPath scoped(false);
      ref = MeasureCascade(GroupId::kTesting256, k, kServers, 0);
    }
    std::printf("%8zu | %12.3f %12.3f | %12.3f %12.3f | %6.1fx\n", k, eng.prove_sec,
                eng.verify_sec, ref.prove_sec, ref.verify_sec,
                (ref.prove_sec + ref.verify_sec) / (eng.prove_sec + eng.verify_sec));
  }

  std::printf("\n-- group size effect (key shuffle, 32 clients) --\n");
  std::printf("%10s | %12s %12s\n", "group", "prove", "verify");
  struct G {
    const char* name;
    GroupId id;
  } groups[] = {{"256-bit", GroupId::kTesting256},
                {"512-bit", GroupId::kMedium512},
                {"1024-bit", GroupId::kProduction1024}};
  for (const auto& g : groups) {
    Cost c = MeasureCascade(g.id, 32, kServers, 0);
    std::printf("%10s | %12.3f %12.3f\n", g.name, c.prove_sec, c.verify_sec);
  }

  std::printf("\nshape checks (§3.10): message shuffles cost a multiple of key shuffles\n");
  std::printf("(width + embedding), and shuffle cost rises steeply with group size —\n");
  std::printf("why Dissent schedules with key shuffles and reserves message shuffles\n");
  std::printf("for accusations.\n");
}

}  // namespace
}  // namespace dissent

int main() {
  dissent::Run();
  return 0;
}
