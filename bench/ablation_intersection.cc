// Ablation C (§3.11): long-term intersection attacks and the buddy system.
//
// Dissent's traffic-analysis resistance does not hide *when* a pseudonym
// posts. An adversary who records the online set at every round a linkable
// pseudonym posts can intersect those sets; with natural churn the
// intersection shrinks toward the blogger alone. The paper proposes the
// buddy discipline: post only when a fixed buddy set is online, so the
// intersection never shrinks below the buddies.
//
// This bench simulates a 500-client group with exponential ON/OFF churn, a
// pseudonymous blogger posting whenever its policy allows, and an adversary
// intersecting participant sets across posts.
#include <cstdio>
#include <set>
#include <vector>

#include "src/app/send_policy.h"
#include "src/sim/latency_model.h"
#include "src/sim/stats.h"

namespace dissent {
namespace {

struct ClientChurnState {
  bool online = true;
  SimTime toggle_at = 0;
};

struct TrialResult {
  std::vector<size_t> intersection_after_post;  // candidate-set size trajectory
  size_t posts = 0;
};

TrialResult RunTrial(bool use_buddies, uint64_t seed) {
  constexpr size_t kClients = 500;
  constexpr size_t kBlogger = 17;
  constexpr int kRounds = 2000;
  constexpr SimTime kRoundPeriod = 10 * kSecond;

  Rng rng(seed);
  ChurnModel churn;
  churn.mean_online = 40 * 60 * kSecond;
  churn.mean_offline = 10 * 60 * kSecond;

  std::vector<ClientChurnState> clients(kClients);
  for (auto& c : clients) {
    c.online = rng.Bernoulli(0.8);
    c.toggle_at = c.online ? churn.DrawOnline(rng) : churn.DrawOffline(rng);
  }
  clients[kBlogger].online = true;

  std::set<uint32_t> buddies;
  if (use_buddies) {
    buddies = {3, 44, 101};  // fixed, chosen at pseudonym creation
  }
  SendPolicy policy(/*min_participation=*/kClients / 2, /*streak=*/1, buddies);

  TrialResult result;
  std::set<uint32_t> candidates;  // adversary's intersection; empty = "all"
  bool first_post = true;

  for (int r = 0; r < kRounds; ++r) {
    SimTime now = static_cast<SimTime>(r) * kRoundPeriod;
    std::vector<uint32_t> online_now;
    for (size_t i = 0; i < kClients; ++i) {
      while (clients[i].toggle_at <= now) {
        clients[i].online = !clients[i].online;
        clients[i].toggle_at += clients[i].online ? churn.DrawOnline(rng)
                                                  : churn.DrawOffline(rng);
      }
      if (clients[i].online) {
        online_now.push_back(static_cast<uint32_t>(i));
      }
    }
    policy.ObserveRound(online_now);
    bool blogger_online = clients[kBlogger].online;
    if (!blogger_online || !policy.SafeToTransmit()) {
      continue;
    }
    // The pseudonym posts this round; the adversary intersects.
    ++result.posts;
    std::set<uint32_t> online_set(online_now.begin(), online_now.end());
    if (first_post) {
      candidates = online_set;
      first_post = false;
    } else {
      std::set<uint32_t> next;
      for (uint32_t c : candidates) {
        if (online_set.count(c)) {
          next.insert(c);
        }
      }
      candidates = std::move(next);
    }
    result.intersection_after_post.push_back(candidates.size());
  }
  return result;
}

void Run() {
  std::printf("=== Ablation: intersection attack vs the buddy system (§3.11) ===\n");
  std::printf("500 clients, ON/OFF churn (40 min up / 10 min down), pseudonymous\n");
  std::printf("blogger; adversary intersects the online set over linkable posts.\n\n");

  std::printf("%8s | %22s | %22s\n", "post #", "no discipline", "buddy system (3 buddies)");
  TrialResult plain = RunTrial(false, 42);
  TrialResult buddy = RunTrial(true, 42);
  for (size_t idx : {0u, 1u, 3u, 7u, 15u, 31u, 63u}) {
    auto at = [&](const TrialResult& t) -> long {
      return idx < t.intersection_after_post.size()
                 ? static_cast<long>(t.intersection_after_post[idx])
                 : -1;
    };
    std::printf("%8zu | %22ld | %22ld\n", idx + 1, at(plain), at(buddy));
  }
  size_t plain_final =
      plain.intersection_after_post.empty() ? 0 : plain.intersection_after_post.back();
  size_t buddy_final =
      buddy.intersection_after_post.empty() ? 0 : buddy.intersection_after_post.back();
  std::printf("\nafter %zu / %zu posts: candidate set %zu (plain) vs %zu (buddies)\n",
              plain.posts, buddy.posts, plain_final, buddy_final);
  std::printf("\nshape checks (§3.11):\n");
  std::printf("  * without discipline the intersection collapses toward the blogger\n");
  std::printf("  * with buddies it never shrinks below blogger + buddy set (>= 4)\n");
  std::printf("  * the availability cost: the buddy blogger posted %zu vs %zu rounds\n",
              buddy.posts, plain.posts);
}

}  // namespace
}  // namespace dissent

int main() {
  dissent::Run();
  return 0;
}
