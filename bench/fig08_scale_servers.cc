// Figure 8 (§5.2): time per round vs number of servers, at a fixed 640
// clients, for both workloads on the DeterLab topology.
//
// Paper's qualitative findings: at small scale extra servers don't help; as
// demand grows (especially 128 KB messages) their utility appears — server
// distribution load spreads across M — while server-to-server costs rise
// with M, so client-related time falls and server-related time grows.
#include <cstdio>

#include "src/simmodel/round_model.h"

namespace dissent {
namespace {

void Run() {
  Calibration cal = Calibration::Measure();
  constexpr size_t kClients = 640;
  const size_t server_counts[] = {1, 2, 4, 10, 24, 32};
  constexpr int kRounds = 25;

  std::printf("=== Figure 8: time per round vs number of servers (640 clients) ===\n");
  std::printf("(seconds; client-submission / server-processing / total)\n\n");
  std::printf("%7s | %-32s | %-32s\n", "servers", "1%-submit (microblog)", "128KB message");

  for (size_t m : server_counts) {
    RoundConfig micro;
    micro.num_clients = kClients;
    micro.num_servers = m;
    micro.cleartext_bytes = MicroblogCleartextBytes(kClients);
    micro.topology = TopologyKind::kDeterlab;

    RoundConfig data = micro;
    data.cleartext_bytes = DataSharingCleartextBytes(kClients);

    Rng r1(8001 + m), r2(8002 + m);
    RoundTimes a{}, b{};
    for (int i = 0; i < kRounds; ++i) {
      RoundTimes t1 = SimulateRound(micro, cal, r1);
      RoundTimes t2 = SimulateRound(data, cal, r2);
      a.client_submission_sec += t1.client_submission_sec / kRounds;
      a.server_processing_sec += t1.server_processing_sec / kRounds;
      a.total_sec += t1.total_sec / kRounds;
      b.client_submission_sec += t2.client_submission_sec / kRounds;
      b.server_processing_sec += t2.server_processing_sec / kRounds;
      b.total_sec += t2.total_sec / kRounds;
    }
    std::printf("%7zu | %8.3f /%9.3f /%9.3f | %8.3f /%9.3f /%9.3f\n", m,
                a.client_submission_sec, a.server_processing_sec, a.total_sec,
                b.client_submission_sec, b.server_processing_sec, b.total_sec);
  }

  std::printf("\npaper-vs-measured (shape checks):\n");
  std::printf("  * 128KB: few servers choke on distribution; more servers spread the load\n");
  std::printf("  * microblog: server-related time grows with M while client share shrinks\n");
}

}  // namespace
}  // namespace dissent

int main() {
  dissent::Run();
  return 0;
}
