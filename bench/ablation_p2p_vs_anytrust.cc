// Ablation A: the headline scalability claim (§1, §3.4-3.6) — classic
// peer-to-peer DC-nets vs Dissent's anytrust client/server design.
//
//  1. per-member compute: O(N) pad bytes vs O(M);
//  2. communication: O(N^2) vs O(N + M^2);
//  3. churn: expected round attempts under mid-round departure probability
//     (all-pairs restarts; Dissent completes regardless, §3.6).
#include <cstdio>

#include "src/baseline/allpairs_dcnet.h"
#include "src/simmodel/round_model.h"

namespace dissent {
namespace {

void Run() {
  constexpr size_t kServers = 16;
  constexpr size_t kLen = 1024;

  std::printf("=== Ablation: all-pairs DC-net vs anytrust client/server ===\n\n");
  std::printf("per-round costs at message length %zu B, M = %zu servers\n\n", kLen, kServers);
  std::printf("%8s | %16s %16s | %12s %12s | %14s %14s\n", "N", "p2p client-PRNG",
              "anytrust (MB)", "p2p msgs", "anytrust", "p2p bytes", "anytrust");
  for (size_t n : {16, 64, 256, 1024, 4096, 16384}) {
    auto p2p = AllPairsDcnet::PerRound(n, kLen);
    auto any = AllPairsDcnet::AnytrustPerRound(n, kServers, kLen);
    std::printf("%8zu | %14.2fMB %14.2fMB | %12.0f %12.0f | %12.1fMB %12.1fMB\n", n,
                p2p.client_prng_bytes / 1e6, any.client_prng_bytes / 1e6, p2p.messages,
                any.messages, p2p.total_bytes / 1e6, any.total_bytes / 1e6);
  }

  std::printf("\nchurn robustness: expected attempts to finish one round when each\n");
  std::printf("member independently departs mid-round with probability p\n\n");
  std::printf("%8s | %12s %12s %12s | %10s\n", "N", "p=0.1%", "p=1%", "p=5%", "anytrust");
  for (size_t n : {16, 64, 256, 1024, 4096}) {
    std::printf("%8zu | %12.2f %12.2f %12.2f | %10s\n", n,
                AllPairsDcnet::ExpectedAttempts(n, 0.001),
                AllPairsDcnet::ExpectedAttempts(n, 0.01),
                AllPairsDcnet::ExpectedAttempts(n, 0.05), "1.00");
  }

  std::printf("\ncrossover summary: at N = 1024 the p2p design expands %.0fx more PRNG\n",
              AllPairsDcnet::PerRound(1024, kLen).client_prng_bytes /
                  AllPairsDcnet::AnytrustPerRound(1024, kServers, kLen).client_prng_bytes);
  std::printf("bytes per client and moves %.0fx more traffic; with 1%% mid-round churn a\n",
              AllPairsDcnet::PerRound(1024, kLen).total_bytes /
                  AllPairsDcnet::AnytrustPerRound(1024, kServers, kLen).total_bytes);
  std::printf("1024-member p2p round restarts ~%.0fx before completing — the two orders\n",
              AllPairsDcnet::ExpectedAttempts(1024, 0.01));
  std::printf("of magnitude the paper's client/server redesign buys (§1).\n");
}

}  // namespace
}  // namespace dissent

int main() {
  dissent::Run();
  return 0;
}
