// Figure 7 (§5.2): time per round vs number of clients, for the microblog
// scenario (1% of clients submit 128 B) and the data-sharing scenario (one
// 128 KB message), split into client-submission and server-processing time.
//
// Paper series: DeterLab with 32 servers (both scenarios) and a
// PlanetLab-like deployment with 17 servers (microblog only). Reference
// points: ~0.5-0.6 s per round at 32-256 clients; >1 s past ~1,000 clients;
// the 128 KB scenario dominated by bandwidth; usable to 5,120 clients.
#include <cstdio>

#include "src/sim/stats.h"
#include "src/simmodel/round_model.h"

namespace dissent {
namespace {

RoundTimes Average(const RoundConfig& cfg, const Calibration& cal, int rounds, uint64_t seed) {
  Rng rng(seed);
  RoundTimes avg;
  for (int i = 0; i < rounds; ++i) {
    RoundTimes t = SimulateRound(cfg, cal, rng);
    avg.client_submission_sec += t.client_submission_sec / rounds;
    avg.server_processing_sec += t.server_processing_sec / rounds;
    avg.total_sec += t.total_sec / rounds;
    avg.participants += t.participants / static_cast<size_t>(rounds);
  }
  return avg;
}

void Run() {
  Calibration cal = Calibration::Measure();
  const size_t client_counts[] = {32, 100, 320, 1000, 5120};
  constexpr int kRounds = 25;

  std::printf("=== Figure 7: time per round vs number of clients ===\n");
  std::printf("(seconds; client-submission / server-processing / total)\n\n");
  std::printf("%7s | %-30s | %-30s | %-30s\n", "clients", "1%-submit DeterLab (32 srv)",
              "1%-submit PlanetLab (17 srv)", "128KB DeterLab (32 srv)");

  for (size_t n : client_counts) {
    RoundConfig micro_dl;
    micro_dl.num_clients = n;
    micro_dl.num_servers = 32;
    micro_dl.cleartext_bytes = MicroblogCleartextBytes(n);
    micro_dl.topology = TopologyKind::kDeterlab;
    RoundTimes a = Average(micro_dl, cal, kRounds, 7001 + n);

    RoundConfig micro_pl = micro_dl;
    micro_pl.num_servers = 17;
    micro_pl.topology = TopologyKind::kPlanetlab;
    RoundTimes b = Average(micro_pl, cal, kRounds, 7002 + n);

    RoundConfig data_dl = micro_dl;
    data_dl.cleartext_bytes = DataSharingCleartextBytes(n);
    RoundTimes c = Average(data_dl, cal, kRounds, 7003 + n);

    std::printf("%7zu | %8.3f /%8.3f /%8.3f | %8.3f /%8.3f /%8.3f | %8.3f /%8.3f /%8.3f\n",
                n, a.client_submission_sec, a.server_processing_sec, a.total_sec,
                b.client_submission_sec, b.server_processing_sec, b.total_sec,
                c.client_submission_sec, c.server_processing_sec, c.total_sec);
  }

  std::printf("\npaper-vs-measured (shape checks):\n");
  std::printf("  * 128KB rounds cost far more than 1%%-submit at every N (bandwidth bound)\n");
  std::printf("  * PlanetLab client submission dominated by straggler tail, not N\n");
  std::printf("  * round time grows with N; 5120 clients remain feasible\n");
  std::printf("  (paper: 0.5-0.6 s at 32-256 clients; >1 s past 1000; see EXPERIMENTS.md)\n");
}

}  // namespace
}  // namespace dissent

int main() {
  dissent::Run();
  return 0;
}
