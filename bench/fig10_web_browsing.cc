// Figures 10 & 11 (§5.4): Alexa-style page download times through four
// configurations — direct, Tor, local-area Dissent, and Dissent+Tor — plus
// the CDF of those times.
//
// Paper's reference points (per ~1 MB page): direct ~10 s, Tor ~40 s,
// Dissent ~45 s, Dissent+Tor ~55 s; Tor reaches 50% of pages by ~15 s and
// Dissent+Tor by ~20 s. Setup: 24 clients + 5 servers on a 24 Mbps / 10 ms
// WLAN; the Dissent round time comes from the calibrated round model on that
// topology; Tor reflects 2012-era public-network throughput.
#include <cstdio>

#include "src/app/webpage.h"
#include "src/sim/stats.h"
#include "src/simmodel/round_model.h"

namespace dissent {
namespace {

void Run() {
  Calibration cal = Calibration::Measure();

  // DC-net round on the WLAN: 24 clients, 5 servers, one active browsing
  // slot of 8 KB (the tunnel frame target) — everyone else silent.
  constexpr size_t kSlotBytes = 8 * 1024;
  RoundConfig round_cfg;
  round_cfg.num_clients = 24;
  round_cfg.num_servers = 5;
  // One shared wireless medium: every client's upload contends with all
  // others, which is what throttles local-area Dissent (§5.4).
  round_cfg.clients_per_machine = 24;
  round_cfg.cleartext_bytes = (24 + 7) / 8 + kSlotBytes;
  round_cfg.topology = TopologyKind::kWlan;
  Rng rng(10001);
  double round_sec = 0;
  constexpr int kProbe = 50;
  for (int i = 0; i < kProbe; ++i) {
    round_sec += SimulateRound(round_cfg, cal, rng).total_sec / kProbe;
  }

  struct Config {
    const char* name;
    ChannelSpec channel;
    double paper_mean_per_mb;
  };
  ChannelSpec dissent = DissentLanChannel(round_sec, kSlotBytes);
  Config configs[] = {
      {"direct", DirectChannel(), 10.0},
      {"tor", TorChannel(), 40.0},
      {"dissent-lan", dissent, 45.0},
      {"dissent+tor", ComposeChannels(dissent, TorChannel()), 55.0},
  };

  std::vector<WebPage> corpus = MakeAlexaCorpus(100, 20120401);
  double mean_page_mb = 0;
  for (const auto& p : corpus) {
    mean_page_mb += p.TotalBytes() / 1e6 / corpus.size();
  }

  std::printf("=== Figure 10: Alexa Top-100 download times ===\n");
  std::printf("WLAN 24 Mbps / 10 ms; 24 clients, 5 servers; DC-net round = %.3f s\n",
              round_sec);
  std::printf("corpus: 100 pages, mean %.2f MB\n\n", mean_page_mb);

  Samples times[4];
  for (int c = 0; c < 4; ++c) {
    for (const WebPage& page : corpus) {
      times[c].Add(DownloadSeconds(page, configs[c].channel));
    }
  }

  std::printf("%-14s %10s %10s %10s %12s %16s\n", "config", "mean", "median", "p90",
              "mean-per-MB", "paper-per-MB");
  for (int c = 0; c < 4; ++c) {
    std::printf("%-14s %10.1f %10.1f %10.1f %12.1f %16.1f\n", configs[c].name,
                times[c].Mean(), times[c].Median(), times[c].Percentile(0.9),
                times[c].Mean() / mean_page_mb, configs[c].paper_mean_per_mb);
  }

  std::printf("\n=== Figure 11: CDF of download times (seconds) ===\n");
  std::printf("%-8s", "p");
  for (const auto& cfg : configs) {
    std::printf(" %12s", cfg.name);
  }
  std::printf("\n");
  for (double q : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    std::printf("%-8.2f", q);
    for (auto& s : times) {
      std::printf(" %12.1f", s.Percentile(q));
    }
    std::printf("\n");
  }

  std::printf("\npaper-vs-measured (shape checks):\n");
  std::printf("  * ordering: direct < tor <= dissent-lan < dissent+tor\n");
  std::printf("  * dissent+tor vs tor slowdown: %.0f%%  (paper: ~35%%)\n",
              100.0 * (times[3].Mean() / times[1].Mean() - 1.0));
  std::printf("  * tor median %.1f s (paper ~15 s); dissent+tor median %.1f s (paper ~20 s)\n",
              times[1].Median(), times[3].Median());
}

}  // namespace
}  // namespace dissent

int main() {
  dissent::Run();
  return 0;
}
