// Whole-protocol throughput over the simulated network: rounds/sec on the
// 100-client topology, sequential (pipeline depth 1) vs pipelined rounds
// (depth 2/3). The `rounds_per_sim_sec` counter is the cross-PR tracking
// metric (BENCH_protocol.json via bench/run_bench.sh): with depth 2 the
// client RTT of round r+1 hides behind round r's server gossip phase
// (Verdict/Riposte-style overlap), so the ideal gain on a gossip-bound
// topology is ~2x. Wall-clock iteration time additionally measures the real
// CPU cost of simulating one protocol second.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "src/core/net_protocol.h"

namespace dissent {
namespace {

constexpr size_t kClients = 100;
constexpr size_t kServers = 5;

struct ProtocolSim {
  GroupDef def;
  Simulator sim;
  std::unique_ptr<NetDissent> net;
};

// The key-shuffle setup (100 ElGamal rows through a 5-server verified
// cascade) is expensive relative to rounds, so each depth's simulation is
// built once and advanced across benchmark iterations/repetitions.
ProtocolSim* GetSim(size_t depth) {
  static std::map<size_t, std::unique_ptr<ProtocolSim>> cache;
  auto it = cache.find(depth);
  if (it != cache.end()) {
    return it->second.get();
  }
  auto ps = std::make_unique<ProtocolSim>();
  SecureRng rng = SecureRng::FromLabel(1234);
  std::vector<BigInt> server_privs, client_privs;
  ps->def = MakeTestGroup(Group::Named(GroupId::kTesting256), kServers, kClients, rng,
                          &server_privs, &client_privs);
  NetDissent::Options options;
  options.pipeline_depth = depth;
  ps->net = std::make_unique<NetDissent>(ps->def, server_privs, client_privs, &ps->sim,
                                         options, 1234);
  if (!ps->net->Start()) {
    return nullptr;
  }
  ProtocolSim* raw = ps.get();
  cache[depth] = std::move(ps);
  return raw;
}

void BM_ProtocolRounds(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  ProtocolSim* ps = GetSim(depth);
  if (ps == nullptr) {
    state.SkipWithError("scheduling shuffle failed");
    return;
  }
  const uint64_t rounds_before = ps->net->rounds_completed();
  const SimTime sim_before = ps->sim.Now();
  for (auto _ : state) {
    // One simulated second of protocol execution per iteration.
    ps->sim.RunUntil(ps->sim.Now() + kSecond);
    benchmark::DoNotOptimize(ps->net->rounds_completed());
  }
  const double sim_elapsed = ToSeconds(ps->sim.Now() - sim_before);
  const double rounds = static_cast<double>(ps->net->rounds_completed() - rounds_before);
  if (sim_elapsed > 0) {
    state.counters["rounds_per_sim_sec"] = rounds / sim_elapsed;
  }
  state.counters["pipelined_submissions"] =
      static_cast<double>(ps->net->pipelined_submissions());
  state.counters["participation"] = static_cast<double>(ps->net->last_participation());
}
BENCHMARK(BM_ProtocolRounds)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dissent

BENCHMARK_MAIN();
