// Whole-protocol throughput over the simulated network.
//
// BM_ProtocolRounds: rounds/sec on the 100-client topology, sequential
// (pipeline depth 1) vs pipelined rounds (depth 2/3). The
// `rounds_per_sim_sec` counter is the cross-PR tracking metric
// (BENCH_protocol.json via bench/run_bench.sh).
//
// BM_ProtocolScale: the paper-scale cases (§5.2) — 1,000 and 5,000 clients
// multiplexed 50-per-machine onto DeterLab-style hosts with shared 100 Mbps
// NICs, every 5th client posting 64-byte microblog messages. Args are
// {clients, mode}:
//   mode 0  per-client Output frames (the pre-batching per-message path,
//           kept for apples-to-apples comparison),
//   mode 1  shared-payload broadcast (one ref-counted frame per attached
//           machine, parsed once per frame),
//   mode 2  mode 1 on the heavy-tailed PlanetLab submission model (§5.1
//           lognormal body + Pareto tail + dropouts) with the adaptive
//           submission window absorbing the stragglers.
//   mode 3  mode 1 with REAL scheduling: the full §3.10 verified key-shuffle
//           cascade (prove + verify at every server) runs through the
//           multi-exponentiation engine instead of the direct slot
//           assignment the scale benches used to need; the cascade's wall
//           cost is reported as scheduling_seconds. Direct modes 0-2 are
//           kept as comparison columns.
// Each benchmark iteration advances the simulation by one completed round,
// so real_time per iteration is the wall cost of simulating one round.
// Counters: rounds_per_sim_sec (deterministic: discrete-event sim),
// bytes_per_round on the wire, peak_round_state_bytes (largest combining
// state any server held — O(L), independent of N for the streaming engine),
// and participation.
//
// BM_ProtocolDisruption: the §3.9 accountability scenario at 1,000 clients —
// a disruptor corrupts the victim's slot every round until the engine-driven
// blame sub-phase (accusation shuffle over 1,000 fixed-width rows, trace,
// verdict) expels it, after which rounds continue at N-1; a fresh disruptor
// is injected after each expulsion, so sustained throughput includes the
// full blame cost. Counters: rounds_per_sim_sec (including blame stalls),
// blames_completed, clients_expelled, participation.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "src/core/net_protocol.h"

namespace dissent {
namespace {

constexpr size_t kServers = 5;

struct ProtocolSim {
  GroupDef def;
  Simulator sim;
  std::unique_ptr<NetDissent> net;
};

ProtocolSim* BuildSim(size_t clients, NetDissent::Options options, uint64_t seed,
                      std::unique_ptr<ProtocolSim>& out) {
  auto ps = std::make_unique<ProtocolSim>();
  SecureRng rng = SecureRng::FromLabel(seed);
  std::vector<BigInt> server_privs, client_privs;
  ps->def = MakeTestGroup(Group::Named(GroupId::kTesting256), kServers, clients, rng,
                          &server_privs, &client_privs);
  ps->net = std::make_unique<NetDissent>(ps->def, server_privs, client_privs, &ps->sim,
                                         options, seed);
  if (!ps->net->Start()) {
    return nullptr;
  }
  out = std::move(ps);
  return out.get();
}

// The key-shuffle setup (100 ElGamal rows through a 5-server verified
// cascade) is expensive relative to rounds, so each depth's simulation is
// built once and advanced across benchmark iterations/repetitions.
ProtocolSim* GetSim(size_t depth) {
  static std::map<size_t, std::unique_ptr<ProtocolSim>> cache;
  auto it = cache.find(depth);
  if (it != cache.end()) {
    return it->second.get();
  }
  NetDissent::Options options;
  options.pipeline_depth = depth;
  return BuildSim(100, options, 1234, cache[depth]);
}

// Paper-scale topologies: built once per (clients, mode); evidence retention
// is off so the data path is strictly O(L) per round. Modes 0-2 skip the
// verified shuffle (direct slot assignment); mode 3 runs the real cascade
// through the multi-exp engine — what used to dwarf the rounds under test
// now costs seconds at 1,000 clients.
ProtocolSim* GetScaleSim(size_t clients, int mode) {
  static std::map<std::pair<size_t, int>, std::unique_ptr<ProtocolSim>> cache;
  auto key = std::make_pair(clients, mode);
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second.get();
  }
  NetDissent::Options options;
  options.clients_per_machine = 50;
  // DeterLab §5.2: 100 Mbps shared NICs; propagation delay lives on the
  // links, serialization on the per-node uplink queues.
  options.machine_uplink = {.latency = 0, .bandwidth_bps = 12.5e6};
  options.server_uplink = {.latency = 0, .bandwidth_bps = 12.5e6};
  options.client_link = {.latency = 50 * kMillisecond, .bandwidth_bps = 0};
  options.server_link = {.latency = 10 * kMillisecond, .bandwidth_bps = 0};
  options.direct_scheduling = mode != 3;
  options.evidence_rounds = 0;
  options.shared_broadcast = mode != 0;
  if (mode == 2) {
    options.submit_delay = PlanetLabDelayModel{};
  }
  ProtocolSim* ps = BuildSim(clients, options, 4321 + clients + mode, cache[key]);
  if (ps == nullptr) {
    return nullptr;
  }
  ps->net->SetRecordCleartexts(false);
  // Microblog workload: every 5th client keeps its slot open with queued
  // 64-byte posts (far more than the measured rounds consume).
  for (size_t i = 0; i < clients; i += 5) {
    for (int m = 0; m < 300; ++m) {
      ps->net->client(i).QueueMessage(Bytes(64, static_cast<uint8_t>(i + m)));
    }
  }
  return ps;
}

void BM_ProtocolRounds(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  ProtocolSim* ps = GetSim(depth);
  if (ps == nullptr) {
    state.SkipWithError("scheduling shuffle failed");
    return;
  }
  const uint64_t rounds_before = ps->net->rounds_completed();
  const SimTime sim_before = ps->sim.Now();
  for (auto _ : state) {
    // One simulated second of protocol execution per iteration.
    ps->sim.RunUntil(ps->sim.Now() + kSecond);
    benchmark::DoNotOptimize(ps->net->rounds_completed());
  }
  const double sim_elapsed = ToSeconds(ps->sim.Now() - sim_before);
  const double rounds = static_cast<double>(ps->net->rounds_completed() - rounds_before);
  if (sim_elapsed > 0) {
    state.counters["rounds_per_sim_sec"] = rounds / sim_elapsed;
  }
  state.counters["pipelined_submissions"] =
      static_cast<double>(ps->net->pipelined_submissions());
  state.counters["participation"] = static_cast<double>(ps->net->last_participation());
}
BENCHMARK(BM_ProtocolRounds)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Disruption scenario (§3.9): built once; evidence retention stays ON (the
// trace needs it) and the victim keeps slot 0 open with a backlog.
ProtocolSim* GetDisruptionSim(size_t clients, std::unique_ptr<ProtocolSim>& cache) {
  if (cache != nullptr) {
    return cache.get();
  }
  NetDissent::Options options;
  options.clients_per_machine = 50;
  options.machine_uplink = {.latency = 0, .bandwidth_bps = 12.5e6};
  options.server_uplink = {.latency = 0, .bandwidth_bps = 12.5e6};
  options.client_link = {.latency = 50 * kMillisecond, .bandwidth_bps = 0};
  options.server_link = {.latency = 10 * kMillisecond, .bandwidth_bps = 0};
  options.direct_scheduling = true;
  options.pipeline_depth = 2;
  ProtocolSim* ps = BuildSim(clients, options, 5150 + clients, cache);
  if (ps == nullptr) {
    return nullptr;
  }
  ps->net->SetRecordCleartexts(false);
  for (int m = 0; m < 400; ++m) {
    ps->net->client(0).QueueMessage(Bytes(64, 0x5a));
  }
  return ps;
}

void BM_ProtocolDisruption(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  static std::unique_ptr<ProtocolSim> cache;
  ProtocolSim* ps = GetDisruptionSim(clients, cache);
  if (ps == nullptr) {
    state.SkipWithError("disruption setup failed");
    return;
  }
  // Victim = client 0 (slot 0 sits right after the request region, so its
  // offset is stable whatever the other slots do).
  const size_t victim_bit =
      (ps->net->server(0).schedule().RequestRegionBytes() + 20) * 8;
  size_t next_disruptor = clients - 1;
  size_t blames_seen = ps->net->blame_outcomes().size();
  ps->net->InjectDisruptor(next_disruptor--, victim_bit);
  const uint64_t rounds_before = ps->net->rounds_completed();
  const SimTime sim_before = ps->sim.Now();
  for (auto _ : state) {
    // One completed round per iteration; blame instances run inline, so an
    // iteration that spans one includes the whole shuffle+trace cost.
    const uint64_t target = ps->net->rounds_completed() + 1;
    const SimTime guard = ps->sim.Now() + 600 * kSecond;
    while (ps->net->rounds_completed() < target && ps->sim.Now() < guard) {
      ps->sim.RunUntil(ps->sim.Now() + kSecond / 20);
    }
    if (ps->net->blame_outcomes().size() > blames_seen) {
      // Culprit expelled: a fresh disruptor takes over ("1 disruptor per K
      // rounds" sustained-abuse shape).
      blames_seen = ps->net->blame_outcomes().size();
      ps->net->InjectDisruptor(next_disruptor--, victim_bit);
    }
  }
  const double sim_elapsed = ToSeconds(ps->sim.Now() - sim_before);
  const double rounds = static_cast<double>(ps->net->rounds_completed() - rounds_before);
  if (rounds <= 0) {
    state.SkipWithError("no rounds completed in the horizon");
    return;
  }
  if (sim_elapsed > 0) {
    state.counters["rounds_per_sim_sec"] = rounds / sim_elapsed;
  }
  size_t expelled = 0;
  for (const auto& done : ps->net->blame_outcomes()) {
    expelled += done.verdict.kind == wire::BlameVerdict::kClientExpelled ? 1 : 0;
  }
  state.counters["blames_completed"] = static_cast<double>(ps->net->blame_outcomes().size());
  state.counters["clients_expelled"] = static_cast<double>(expelled);
  state.counters["participation"] = static_cast<double>(ps->net->last_participation());
}
BENCHMARK(BM_ProtocolDisruption)
    ->Arg(1000)
    ->Iterations(8)
    ->Unit(benchmark::kSecond)
    ->UseRealTime();

void BM_ProtocolScale(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  ProtocolSim* ps = GetScaleSim(clients, mode);
  if (ps == nullptr) {
    state.SkipWithError("scale setup failed");
    return;
  }
  const uint64_t rounds_before = ps->net->rounds_completed();
  const SimTime sim_before = ps->sim.Now();
  const uint64_t bytes_before = ps->net->network().bytes_sent();
  for (auto _ : state) {
    // One completed round per iteration (bounded so a stalled configuration
    // cannot hang the bench).
    const uint64_t target = ps->net->rounds_completed() + 1;
    const SimTime guard = ps->sim.Now() + 120 * kSecond;
    while (ps->net->rounds_completed() < target && ps->sim.Now() < guard) {
      ps->sim.RunUntil(ps->sim.Now() + kSecond / 20);
    }
  }
  const double sim_elapsed = ToSeconds(ps->sim.Now() - sim_before);
  const double rounds = static_cast<double>(ps->net->rounds_completed() - rounds_before);
  if (rounds <= 0) {
    state.SkipWithError("no rounds completed in the horizon");
    return;
  }
  if (sim_elapsed > 0) {
    state.counters["rounds_per_sim_sec"] = rounds / sim_elapsed;
  }
  state.counters["bytes_per_round"] =
      static_cast<double>(ps->net->network().bytes_sent() - bytes_before) / rounds;
  state.counters["peak_round_state_bytes"] =
      static_cast<double>(ps->net->peak_round_state_bytes());
  state.counters["participation"] = static_cast<double>(ps->net->last_participation());
  state.counters["scheduling_seconds"] = ps->net->scheduling_seconds();
}
BENCHMARK(BM_ProtocolScale)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 3})
    ->Args({5000, 0})
    ->Args({5000, 1})
    ->Iterations(10)
    ->Unit(benchmark::kSecond)
    ->UseRealTime();

// Hostile-network scenario (PR 6): 1,000 clients under the fault matrix —
// 1% loss, 1% duplication, 5% reordering, and a 30 sim-second outage of
// server 1 — with the reliability layer (ack/retransmit + capped backoff),
// client resync, and crash-recovery-from-snapshot turned on. A clean
// reference sim with the identical reliability configuration but no faults
// is advanced alongside to price the overhead.
//
// Counters:
//   rounds_per_sim_sec    throughput over the whole horizon, outage included
//   rounds_recovered      rounds certified after the server restarted
//   rounds_to_recover     restart-to-first-certified-round latency, in units
//                         of the clean run's average round time
//   retransmit_overhead   faulted bytes-per-completed-round over clean, in
//                         the steady-state window before the crash (the
//                         acceptance bound: <= 1.15x at 1% loss)
//   retransmit_overhead_with_outage
//                         the same ratio over the whole horizon — dominated
//                         by backoff traffic sent while the fleet stalls
//   retransmits           reliable-frame retransmissions across all engines
struct FaultSims {
  std::unique_ptr<ProtocolSim> faulty;
  std::unique_ptr<ProtocolSim> clean;
};

constexpr SimTime kFaultCrashDown = 30 * kSecond;
constexpr SimTime kFaultCrashUp = 60 * kSecond;

FaultSims* GetFaultSims(size_t clients) {
  static std::map<size_t, std::unique_ptr<FaultSims>> cache;
  auto it = cache.find(clients);
  if (it != cache.end()) {
    return it->second.get();
  }
  NetDissent::Options options;
  options.clients_per_machine = 50;
  options.machine_uplink = {.latency = 0, .bandwidth_bps = 12.5e6};
  options.server_uplink = {.latency = 0, .bandwidth_bps = 12.5e6};
  options.client_link = {.latency = 50 * kMillisecond, .bandwidth_bps = 0};
  options.server_link = {.latency = 10 * kMillisecond, .bandwidth_bps = 0};
  options.direct_scheduling = true;
  options.evidence_rounds = 0;
  options.reliability.enabled = true;
  // Comfortably above the ~1.5 s round time: a stall-resync interval that a
  // slow-but-healthy round can cross makes every client re-send its
  // in-flight ciphertexts at once, which swamps the retransmit budget.
  options.resync_timeout = 5 * kSecond;
  // The outage is temporary, so the fleet stalls and resumes rather than
  // voting aborts — every certified round matches the clean schedule.
  auto sims = std::make_unique<FaultSims>();
  if (BuildSim(clients, options, 6006 + clients, sims->clean) == nullptr) {
    return nullptr;
  }
  options.fault_plan = sim::FaultPlan{};
  options.fault_plan->seed = 6006 + clients;
  options.fault_plan->drop = 0.01;
  options.fault_plan->duplicate = 0.01;
  options.fault_plan->reorder = 0.05;
  options.fault_plan->crashes.push_back(
      {.node = 1, .down_at = kFaultCrashDown, .up_at = kFaultCrashUp});
  if (BuildSim(clients, options, options.fault_plan->seed, sims->faulty) == nullptr) {
    return nullptr;
  }
  sims->clean->net->SetRecordCleartexts(false);
  sims->faulty->net->SetRecordCleartexts(false);
  auto& slot = cache[clients];
  slot = std::move(sims);
  return slot.get();
}

void BM_ProtocolFaults(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  FaultSims* fs = GetFaultSims(clients);
  if (fs == nullptr) {
    state.SkipWithError("fault setup failed");
    return;
  }
  ProtocolSim* ps = fs->faulty.get();
  uint64_t rounds_at_restart = 0;
  uint64_t rounds_at_down = 0;
  uint64_t bytes_at_down = 0;
  SimTime recovered_at = 0;
  const uint64_t rounds_before = ps->net->rounds_completed();
  const SimTime sim_before = ps->sim.Now();
  const uint64_t bytes_before = ps->net->network().bytes_sent();
  for (auto _ : state) {
    // One simulated second per iteration, stepped finely enough to timestamp
    // the first certified round after the crashed server restarts.
    const SimTime until = ps->sim.Now() + kSecond;
    while (ps->sim.Now() < until) {
      ps->sim.RunUntil(ps->sim.Now() + kSecond / 20);
      if (ps->sim.Now() <= kFaultCrashDown) {
        rounds_at_down = ps->net->rounds_completed();
        bytes_at_down = ps->net->network().bytes_sent();
      }
      if (ps->sim.Now() <= kFaultCrashUp) {
        rounds_at_restart = ps->net->rounds_completed();
      } else if (recovered_at == 0 &&
                 ps->net->rounds_completed() > rounds_at_restart) {
        recovered_at = ps->sim.Now();
      }
    }
  }
  const double sim_elapsed = ToSeconds(ps->sim.Now() - sim_before);
  const double rounds = static_cast<double>(ps->net->rounds_completed() - rounds_before);
  if (rounds <= 0) {
    state.SkipWithError("no rounds completed under faults");
    return;
  }
  // Clean reference over the same sim horizon (advanced outside the timer),
  // sampled at the crash point for the steady-state comparison window.
  ProtocolSim* clean = fs->clean.get();
  const uint64_t clean_rounds_before = clean->net->rounds_completed();
  const uint64_t clean_bytes_before = clean->net->network().bytes_sent();
  const SimTime clean_sim_before = clean->sim.Now();
  clean->sim.RunUntil(clean->sim.Now() + kFaultCrashDown);
  const double clean_rounds_at_down =
      static_cast<double>(clean->net->rounds_completed() - clean_rounds_before);
  const double clean_bytes_at_down =
      static_cast<double>(clean->net->network().bytes_sent() - clean_bytes_before);
  clean->sim.RunUntil(clean_sim_before + (ps->sim.Now() - sim_before));
  const double clean_rounds =
      static_cast<double>(clean->net->rounds_completed() - clean_rounds_before);
  if (sim_elapsed > 0) {
    state.counters["rounds_per_sim_sec"] = rounds / sim_elapsed;
  }
  state.counters["rounds_recovered"] = static_cast<double>(
      ps->net->rounds_completed() > rounds_at_restart
          ? ps->net->rounds_completed() - rounds_at_restart
          : 0);
  if (recovered_at > 0 && clean_rounds > 0) {
    const double clean_round_time =
        ToSeconds(clean->sim.Now() - clean_sim_before) / clean_rounds;
    state.counters["rounds_to_recover"] =
        ToSeconds(recovered_at - kFaultCrashUp) / clean_round_time;
  }
  const double rounds_at_down_d = static_cast<double>(rounds_at_down - rounds_before);
  if (clean_rounds_at_down > 0 && rounds_at_down_d > 0) {
    state.counters["retransmit_overhead"] =
        (static_cast<double>(bytes_at_down - bytes_before) / rounds_at_down_d) /
        (clean_bytes_at_down / clean_rounds_at_down);
  }
  if (clean_rounds > 0 && rounds > 0) {
    const double clean_bpr =
        static_cast<double>(clean->net->network().bytes_sent() - clean_bytes_before) /
        clean_rounds;
    const double faulty_bpr =
        static_cast<double>(ps->net->network().bytes_sent() - bytes_before) / rounds;
    state.counters["retransmit_overhead_with_outage"] = faulty_bpr / clean_bpr;
  }
  state.counters["retransmits"] = static_cast<double>(ps->net->retransmits());
  state.counters["server_restarts"] = static_cast<double>(ps->net->server_restarts());
  state.counters["participation"] = static_cast<double>(ps->net->last_participation());
  // No abort deadline is armed in this plan: the outage is ridden out by
  // stall-and-resync, so any certified abort here would mean the fleet
  // diverged from the clean schedule. Pinning the zero keeps the counter in
  // the bench JSON next to the chaos-mode runs, where it is nonzero.
  state.counters["aborts_agreed"] = static_cast<double>(ps->net->rounds_aborted());
}
BENCHMARK(BM_ProtocolFaults)
    ->Arg(1000)
    ->Iterations(120)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dissent

BENCHMARK_MAIN();
