#!/usr/bin/env bash
# Runs the benchmark suites with JSON output at the repo root, so perf
# changes are diffable across PRs:
#  * micro_dcnet + micro_crypto  -> BENCH_dcnet.json    (data-plane)
#  * micro_protocol              -> BENCH_protocol.json (whole-protocol
#    rounds/sec, sequential vs pipelined rounds on the 100-client topology)
#
# Usage: bench/run_bench.sh [build_dir] [dcnet_out.json] [protocol_out.json]
#
# Build first (DISSENT_NATIVE=ON makes the numbers reflect the local ISA):
#   cmake -B build -S . -DDISSENT_NATIVE=ON && cmake --build build -j
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="${2:-$repo_root/BENCH_dcnet.json}"
protocol_out="${3:-$repo_root/BENCH_protocol.json}"

for bin in micro_dcnet micro_crypto micro_protocol; do
  if [[ ! -x "$build_dir/$bin" ]]; then
    echo "error: $build_dir/$bin not found; build the repo first" >&2
    exit 1
  fi
done

tmp_dcnet="$(mktemp)"
tmp_crypto="$(mktemp)"
trap 'rm -f "$tmp_dcnet" "$tmp_crypto"' EXIT

"$build_dir/micro_dcnet" --benchmark_format=json \
  --benchmark_out="$tmp_dcnet" --benchmark_out_format=json
"$build_dir/micro_crypto" --benchmark_format=json \
  --benchmark_out="$tmp_crypto" --benchmark_out_format=json

# One file: micro_dcnet's context plus both benchmark arrays.
jq -s '{context: .[0].context, benchmarks: (.[0].benchmarks + .[1].benchmarks)}' \
  "$tmp_dcnet" "$tmp_crypto" > "$out"

echo "wrote $out ($(jq '.benchmarks | length' "$out") benchmarks)"

"$build_dir/micro_protocol" --benchmark_format=json \
  --benchmark_out="$protocol_out" --benchmark_out_format=json

seq_rps="$(jq '[.benchmarks[] | select(.name | contains("/1/")) | .rounds_per_sim_sec] | first' "$protocol_out")"
pipe_rps="$(jq '[.benchmarks[] | select(.name | contains("/2/")) | .rounds_per_sim_sec] | first' "$protocol_out")"
echo "wrote $protocol_out (sequential ${seq_rps} rounds/sim-s, pipelined-x2 ${pipe_rps} rounds/sim-s)"
