#!/usr/bin/env bash
# Configures+builds an explicit Release tree and runs the benchmark suites
# with JSON output at the repo root, so perf changes are diffable across PRs:
#  * micro_dcnet + micro_crypto  -> BENCH_dcnet.json    (data-plane)
#  * micro_protocol              -> BENCH_protocol.json (whole-protocol
#    rounds/sec: 100-client pipelining cases + the 1,000/5,000-client
#    paper-scale cases, per-message vs shared-payload broadcast)
#
# Usage: bench/run_bench.sh [--native] [--skip-build] [build_dir]
#                           [dcnet_out.json] [protocol_out.json]
#
#   --native      adds -DDISSENT_NATIVE=ON (-O3 -march=native): numbers
#                 reflect the local ISA instead of the portable baseline
#   --skip-build  use build_dir as-is (caller guarantees it is Release)
#
# The build type is pinned to Release here (and recorded in the output JSON
# as context.dissent_build) so cross-PR numbers are never silently from an
# unoptimized tree — note the system benchmark library's own
# "library_build_type" field describes libbenchmark, not this code.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
native=0
skip_build=0
positional=()
for arg in "$@"; do
  case "$arg" in
    --native) native=1 ;;
    --skip-build) skip_build=1 ;;
    *) positional+=("$arg") ;;
  esac
done
default_build="$repo_root/build-bench"
if [[ $native -eq 1 ]]; then
  default_build="$repo_root/build-bench-native"
fi
build_dir="${positional[0]:-$default_build}"
out="${positional[1]:-$repo_root/BENCH_dcnet.json}"
protocol_out="${positional[2]:-$repo_root/BENCH_protocol.json}"

flavor="Release"
if [[ $native -eq 1 ]]; then
  flavor="Release+native"
fi

if [[ $skip_build -eq 0 ]]; then
  cmake_flags=(-DCMAKE_BUILD_TYPE=Release)
  if [[ $native -eq 1 ]]; then
    cmake_flags+=(-DDISSENT_NATIVE=ON)
  fi
  cmake -B "$build_dir" -S "$repo_root" "${cmake_flags[@]}" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" \
    --target micro_dcnet micro_crypto micro_protocol dissentd dissent-client
fi

for bin in micro_dcnet micro_crypto micro_protocol; do
  if [[ ! -x "$build_dir/$bin" ]]; then
    echo "error: $build_dir/$bin not found; build the repo first" >&2
    exit 1
  fi
done

tmp_dcnet="$(mktemp)"
tmp_crypto="$(mktemp)"
tmp_protocol="$(mktemp)"
trap 'rm -f "$tmp_dcnet" "$tmp_crypto" "$tmp_protocol"' EXIT

"$build_dir/micro_dcnet" --benchmark_format=json \
  --benchmark_out="$tmp_dcnet" --benchmark_out_format=json
"$build_dir/micro_crypto" --benchmark_format=json \
  --benchmark_out="$tmp_crypto" --benchmark_out_format=json

# One file: micro_dcnet's context plus both benchmark arrays, stamped with
# the build flavor this script configured.
jq -s --arg flavor "$flavor" \
  '{context: (.[0].context + {dissent_build: $flavor}),
    benchmarks: (.[0].benchmarks + .[1].benchmarks)}' \
  "$tmp_dcnet" "$tmp_crypto" > "$out"

echo "wrote $out ($(jq '.benchmarks | length' "$out") benchmarks, $flavor)"

casc_ref="$(jq '[.benchmarks[] | select(.name | contains("KeyShuffleCascade/1000/0")) | .total_sec] | first' "$out")"
casc_eng="$(jq '[.benchmarks[] | select(.name | contains("KeyShuffleCascade/1000/1")) | .total_sec] | first' "$out")"
echo "  key-shuffle cascade @1000 clients: engine ${casc_eng}s vs reference ${casc_ref}s"

"$build_dir/micro_protocol" --benchmark_format=json \
  --benchmark_out="$tmp_protocol" --benchmark_out_format=json
jq --arg flavor "$flavor" \
  '.context += {dissent_build: $flavor}' "$tmp_protocol" > "$protocol_out"

# Real-socket deployment wall clock (scripts/localrun.sh): 5 dissentd + 100
# single-client processes on loopback running the verified shuffle + depth-2
# pipelined rounds. Unlike rounds_per_sim_sec this IS runner-dependent — it
# is the number the paper reports (real rounds/sec), recorded alongside the
# sim-time columns rather than replacing them.
if [[ -x "$build_dir/dissentd" && -x "$build_dir/dissent-client" ]]; then
  localrun_out="$(mktemp -d)"
  if "$repo_root/scripts/localrun.sh" --build "$build_dir" --out "$localrun_out" \
       --base-port 30520 > /dev/null 2>&1; then
    wall_rps="$(jq '.wallclock_rounds_per_sec' "$localrun_out/summary.json")"
    jq --argjson rps "$wall_rps" \
      '.benchmarks += [{name: "SocketDeployment/5servers/100client_procs",
                        run_type: "deployment", iterations: 1,
                        wallclock_rounds_per_sec: $rps}]' \
      "$protocol_out" > "$protocol_out.tmp" && mv "$protocol_out.tmp" "$protocol_out"
  else
    echo "warning: socket-deployment localrun failed; wallclock column omitted" >&2
  fi
  rm -rf "$localrun_out"
fi

seq_rps="$(jq '[.benchmarks[] | select(.name | contains("ProtocolRounds/1/")) | .rounds_per_sim_sec] | first' "$protocol_out")"
pipe_rps="$(jq '[.benchmarks[] | select(.name | contains("ProtocolRounds/2/")) | .rounds_per_sim_sec] | first' "$protocol_out")"
legacy_1k="$(jq '[.benchmarks[] | select(.name | contains("ProtocolScale/1000/0")) | .rounds_per_sim_sec] | first' "$protocol_out")"
shared_1k="$(jq '[.benchmarks[] | select(.name | contains("ProtocolScale/1000/1")) | .rounds_per_sim_sec] | first' "$protocol_out")"
real_1k="$(jq '[.benchmarks[] | select(.name | contains("ProtocolScale/1000/3")) | .rounds_per_sim_sec] | first' "$protocol_out")"
real_1k_sched="$(jq '[.benchmarks[] | select(.name | contains("ProtocolScale/1000/3")) | .scheduling_seconds] | first' "$protocol_out")"
shared_5k="$(jq '[.benchmarks[] | select(.name | contains("ProtocolScale/5000/1")) | .rounds_per_sim_sec] | first' "$protocol_out")"
disrupt_rps="$(jq '[.benchmarks[] | select(.name | contains("ProtocolDisruption/1000")) | .rounds_per_sim_sec] | first' "$protocol_out")"
disrupt_blames="$(jq '[.benchmarks[] | select(.name | contains("ProtocolDisruption/1000")) | .blames_completed] | first' "$protocol_out")"
faults_rps="$(jq '[.benchmarks[] | select(.name | contains("ProtocolFaults/1000")) | .rounds_per_sim_sec] | first' "$protocol_out")"
faults_recover="$(jq '[.benchmarks[] | select(.name | contains("ProtocolFaults/1000")) | .rounds_to_recover] | first' "$protocol_out")"
faults_overhead="$(jq '[.benchmarks[] | select(.name | contains("ProtocolFaults/1000")) | .retransmit_overhead] | first' "$protocol_out")"
faults_recovered="$(jq '[.benchmarks[] | select(.name | contains("ProtocolFaults/1000")) | .rounds_recovered] | first' "$protocol_out")"
wall_rps="$(jq '[.benchmarks[] | select(.name | contains("SocketDeployment")) | .wallclock_rounds_per_sec] | first' "$protocol_out")"
echo "wrote $protocol_out ($flavor)"
echo "  real sockets (5 servers + 100 client procs): ${wall_rps} wall-clock rounds/sec"
echo "  100 clients: sequential ${seq_rps} rounds/sim-s, pipelined-x2 ${pipe_rps}"
echo "  1000 clients: per-message ${legacy_1k} rounds/sim-s, shared-broadcast ${shared_1k}"
echo "  1000 clients + REAL verified shuffle: ${real_1k} rounds/sim-s (cascade setup ${real_1k_sched}s)"
echo "  5000 clients: shared-broadcast ${shared_5k} rounds/sim-s"
echo "  1000 clients + disruptor (§3.9 blame inline): ${disrupt_rps} rounds/sim-s, ${disrupt_blames} blame(s) resolved"
echo "  1000 clients + fault matrix (1% loss/dup, 5% reorder, 30 sim-s outage):" \
     "${faults_rps} rounds/sim-s, ${faults_recovered} rounds after restart," \
     "recovery ${faults_recover} round-times, retransmit overhead ${faults_overhead}x"
